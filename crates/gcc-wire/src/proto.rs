//! Typed requests, responses and their binary codecs.
//!
//! Every message is one wire frame (see [`crate::frame`]): the frame's
//! `kind` byte selects the variant, the payload is the variant's fields in
//! declaration order, encoded with the same little-endian primitives scene
//! files use ([`gcc_scene::codec`]). Requests use kinds `0x01..=0x06`,
//! responses `0x81..=0x8A` — the high bit marks the direction, so a peer
//! can reject a message sent the wrong way without guessing.
//!
//! # Versioning rules
//!
//! The frame header's `version` byte covers *everything* in this module:
//! any change to a payload layout, a tag value, or the meaning of a field
//! bumps [`crate::frame::WIRE_VERSION`]. Within one version the rules are:
//!
//! * fields are appended, never reordered or resized;
//! * decoders reject trailing bytes (`Malformed`), so payloads cannot be
//!   silently extended — extension *is* a version bump;
//! * enum tags are append-only and never reused.
//!
//! # Limits
//!
//! Strings are capped at [`MAX_STR_LEN`] bytes, explicit view lists at
//! [`MAX_VIEWS`] entries and images at [`MAX_PIXELS`] pixels. The caps are
//! validated before any allocation is sized from wire data, so a hostile
//! peer cannot force a huge allocation with a short frame.

use std::io::{self, Read};
use std::time::Duration;

use gcc_math::Vec3;
use gcc_render::{Frame, FrameStats, Image, RenderOptions, Roi, Schedule};
use gcc_scene::codec;
use gcc_scene::ViewSpec;
use gcc_serve::{
    LodCounters, LodDecision, Priority, PriorityCounters, SceneCounters, ScheduleCounters,
    ServeError, ServeStats, StreamConfig, StreamCounters, StreamSpec,
};

use crate::frame::WireError;

/// Longest string (scene id, error message) a codec will read.
pub const MAX_STR_LEN: usize = 4096;

/// Most entries an explicit [`StreamSpec::ViewList`] may carry on the wire.
pub const MAX_VIEWS: usize = 1 << 20;

/// Most pixels a wire-decoded [`Image`] may have (64 Mpx ≈ the transport's
/// frame cap divided by the 12-byte pixel).
pub const MAX_PIXELS: u64 = 1 << 26;

// ---------------------------------------------------------------------------
// Message types
// ---------------------------------------------------------------------------

/// A client → server message. One request yields exactly one [`Response`]
/// on the same connection, in order — the protocol is strict
/// request/response, so client-side backpressure is simply the pull
/// cadence of [`Request::NextFrame`].
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a frame stream on a scene (the wire form of
    /// `RenderService::session` + `Session::stream_with`). Answered with
    /// [`Response::Opened`] or [`Response::Rejected`].
    Open {
        /// Scene id in the server's registry.
        scene: String,
        /// Session-default render options (schedule, resolution, quality
        /// knobs) applied to every frame of the stream.
        defaults: RenderOptions,
        /// What to render.
        spec: StreamSpec,
        /// Priority, per-frame deadline and in-flight window.
        config: StreamConfig,
    },
    /// Pull the next in-order frame of an open stream. Answered with
    /// [`Response::Frame`], [`Response::FrameError`] or
    /// [`Response::StreamEnd`].
    NextFrame {
        /// Stream id from [`Response::Opened`].
        stream: u64,
    },
    /// Cancel an open stream, discarding undelivered frames. Answered
    /// with [`Response::Cancelled`] (idempotent: cancelling an unknown or
    /// finished stream still acks).
    Cancel {
        /// Stream id from [`Response::Opened`].
        stream: u64,
    },
    /// Snapshot the server's service statistics. Answered with
    /// [`Response::Stats`].
    Stats,
    /// Liveness probe. Answered with [`Response::Pong`]; the shard
    /// proxy's health prober sends these.
    Ping,
    /// Ask the server to drain and exit — the wire equivalent of SIGTERM.
    /// Answered with [`Response::ShutdownAck`]; afterwards the server
    /// rejects new [`Request::Open`]s with
    /// [`WireRejection::ShuttingDown`] while letting open streams finish.
    Shutdown,
}

/// A server → client message.
#[derive(Debug, Clone)]
pub enum Response {
    /// A stream was admitted.
    Opened {
        /// Connection-scoped stream id for subsequent
        /// [`Request::NextFrame`] / [`Request::Cancel`].
        stream: u64,
        /// Total frames the stream will deliver.
        frames: u64,
    },
    /// The next in-order frame of a stream.
    Frame {
        /// The stream the frame belongs to.
        stream: u64,
        /// Zero-based index of this frame within the stream.
        index: u64,
        /// The rendered frame, bit-identical to an in-process render.
        frame: Frame,
    },
    /// A frame slot resolved to an error (the stream may still deliver
    /// later frames only if the error is per-frame; stream-fatal errors
    /// end the stream server-side and subsequent pulls see
    /// [`Response::StreamEnd`]).
    FrameError {
        /// The stream the error belongs to.
        stream: u64,
        /// Zero-based index of the failed frame slot.
        index: u64,
        /// Why the frame failed.
        error: WireRejection,
    },
    /// All frames of the stream were delivered (or the stream failed and
    /// has nothing further); the id is now dead.
    StreamEnd {
        /// The finished stream.
        stream: u64,
    },
    /// Acknowledges [`Request::Cancel`].
    Cancelled {
        /// The cancelled stream.
        stream: u64,
    },
    /// An [`Request::Open`] was refused with a typed, retryable-or-not
    /// reason.
    Rejected(WireRejection),
    /// Snapshot answering [`Request::Stats`] (boxed: a [`ServeStats`]
    /// with its per-scene maps and LOD decision trace dwarfs every
    /// other variant).
    Stats(Box<ServeStats>),
    /// Answers [`Request::Ping`].
    Pong,
    /// Acknowledges [`Request::Shutdown`].
    ShutdownAck,
    /// The peer sent something the server could not parse (unknown kind,
    /// malformed payload, bad version, oversized frame). The connection
    /// survives; the offending request is dropped.
    Error {
        /// Human-readable description of the protocol violation.
        message: String,
    },
}

/// A typed refusal carried on the wire — the serializable image of
/// [`ServeError`], plus [`WireRejection::Unavailable`] which only the
/// shard proxy emits. `retry_after` hints survive the trip, so remote
/// clients can back off exactly like in-process ones.
#[derive(Debug, Clone, PartialEq)]
pub enum WireRejection {
    /// No such scene in the server's registry.
    UnknownScene(String),
    /// View or option validation failed (message is the stringified
    /// [`gcc_scene::ViewError`] — the typed payload does not cross the
    /// wire, the retry decision never depends on its fields).
    InvalidRequest(String),
    /// A zero-frame stream spec.
    EmptyStream,
    /// The scene's source failed to load.
    Load {
        /// Scene id whose load failed.
        scene: String,
        /// Human-readable cause.
        message: String,
    },
    /// The server is draining and accepts no new streams.
    ShuttingDown,
    /// The worker rendering the batch panicked.
    WorkerPanicked,
    /// The scene is quarantined behind the load circuit breaker.
    Quarantined {
        /// The quarantined scene id.
        scene: String,
        /// Remaining quarantine time at rejection.
        retry_after: Duration,
    },
    /// The server shed the stream under load.
    Overloaded {
        /// Suggested backoff before retrying.
        retry_after: Duration,
    },
    /// Proxy-only: the shard owning the scene is unreachable and no
    /// failover target is alive.
    Unavailable {
        /// What the proxy observed.
        message: String,
        /// Suggested backoff before retrying.
        retry_after: Duration,
    },
}

impl From<&ServeError> for WireRejection {
    fn from(e: &ServeError) -> Self {
        match e {
            ServeError::UnknownScene(s) => WireRejection::UnknownScene(s.clone()),
            ServeError::InvalidRequest(v) => WireRejection::InvalidRequest(v.to_string()),
            ServeError::EmptyStream => WireRejection::EmptyStream,
            ServeError::Load { scene, message } => WireRejection::Load {
                scene: scene.clone(),
                message: message.clone(),
            },
            ServeError::ShuttingDown => WireRejection::ShuttingDown,
            ServeError::WorkerPanicked => WireRejection::WorkerPanicked,
            ServeError::Quarantined { scene, retry_after } => WireRejection::Quarantined {
                scene: scene.clone(),
                retry_after: *retry_after,
            },
            ServeError::Overloaded { retry_after } => WireRejection::Overloaded {
                retry_after: *retry_after,
            },
        }
    }
}

impl std::fmt::Display for WireRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireRejection::UnknownScene(s) => write!(f, "unknown scene {s:?}"),
            WireRejection::InvalidRequest(m) => write!(f, "invalid request: {m}"),
            WireRejection::EmptyStream => write!(f, "stream spec describes zero frames"),
            WireRejection::Load { scene, message } => {
                write!(f, "loading scene {scene:?} failed: {message}")
            }
            WireRejection::ShuttingDown => write!(f, "server is shutting down"),
            WireRejection::WorkerPanicked => write!(f, "render worker panicked"),
            WireRejection::Quarantined { scene, retry_after } => write!(
                f,
                "scene {scene:?} quarantined, retry in {:.0} ms",
                retry_after.as_secs_f64() * 1e3
            ),
            WireRejection::Overloaded { retry_after } => write!(
                f,
                "server overloaded, retry in {:.0} ms",
                retry_after.as_secs_f64() * 1e3
            ),
            WireRejection::Unavailable {
                message,
                retry_after,
            } => write!(
                f,
                "shard unavailable ({message}), retry in {:.0} ms",
                retry_after.as_secs_f64() * 1e3
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// Frame kinds
// ---------------------------------------------------------------------------

mod kind {
    pub const OPEN: u8 = 0x01;
    pub const NEXT_FRAME: u8 = 0x02;
    pub const CANCEL: u8 = 0x03;
    pub const STATS: u8 = 0x04;
    pub const PING: u8 = 0x05;
    pub const SHUTDOWN: u8 = 0x06;

    pub const OPENED: u8 = 0x81;
    pub const FRAME: u8 = 0x82;
    pub const FRAME_ERROR: u8 = 0x83;
    pub const STREAM_END: u8 = 0x84;
    pub const CANCELLED: u8 = 0x85;
    pub const REJECTED: u8 = 0x86;
    pub const STATS_SNAPSHOT: u8 = 0x87;
    pub const PONG: u8 = 0x88;
    pub const SHUTDOWN_ACK: u8 = 0x89;
    pub const ERROR: u8 = 0x8A;
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// An `InvalidData` error with a message — the shared "semantically bad
/// bytes" failure all decoders funnel through.
fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Writes to `Vec<u8>` cannot fail; this collapses the codec's
/// `io::Result` plumbing at the message boundary.
fn infallible<T>(r: io::Result<T>) -> T {
    r.expect("writes to Vec<u8> are infallible")
}

fn dur_to_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

fn write_duration(out: &mut Vec<u8>, d: Duration) -> io::Result<()> {
    codec::write_u64(out, dur_to_nanos(d))
}

fn read_duration<R: Read>(r: &mut R) -> io::Result<Duration> {
    Ok(Duration::from_nanos(codec::read_u64(r)?))
}

fn write_opt<T>(
    out: &mut Vec<u8>,
    v: Option<&T>,
    f: impl FnOnce(&mut Vec<u8>, &T) -> io::Result<()>,
) -> io::Result<()> {
    match v {
        None => codec::write_u8(out, 0),
        Some(v) => {
            codec::write_u8(out, 1)?;
            f(out, v)
        }
    }
}

fn read_opt<R: Read, T>(
    r: &mut R,
    f: impl FnOnce(&mut R) -> io::Result<T>,
) -> io::Result<Option<T>> {
    match codec::read_u8(r)? {
        0 => Ok(None),
        1 => Ok(Some(f(r)?)),
        t => Err(bad(format!("bad option tag {t}"))),
    }
}

fn write_vec3(out: &mut Vec<u8>, v: Vec3) -> io::Result<()> {
    codec::write_f32(out, v.x)?;
    codec::write_f32(out, v.y)?;
    codec::write_f32(out, v.z)
}

fn read_vec3<R: Read>(r: &mut R) -> io::Result<Vec3> {
    Ok(Vec3 {
        x: codec::read_f32(r)?,
        y: codec::read_f32(r)?,
        z: codec::read_f32(r)?,
    })
}

fn schedule_tag(s: Schedule) -> u8 {
    Schedule::ALL
        .iter()
        .position(|v| *v == s)
        .expect("Schedule::ALL covers every schedule") as u8
}

fn read_schedule<R: Read>(r: &mut R) -> io::Result<Schedule> {
    let tag = codec::read_u8(r)?;
    Schedule::ALL
        .get(tag as usize)
        .copied()
        .ok_or_else(|| bad(format!("bad schedule tag {tag}")))
}

fn priority_tag(p: Priority) -> u8 {
    match p {
        Priority::Interactive => 0,
        Priority::Bulk => 1,
    }
}

fn read_priority<R: Read>(r: &mut R) -> io::Result<Priority> {
    match codec::read_u8(r)? {
        0 => Ok(Priority::Interactive),
        1 => Ok(Priority::Bulk),
        t => Err(bad(format!("bad priority tag {t}"))),
    }
}

fn read_usize<R: Read>(r: &mut R) -> io::Result<usize> {
    let v = codec::read_u64(r)?;
    usize::try_from(v).map_err(|_| bad(format!("count {v} exceeds this platform's usize")))
}

fn read_bool<R: Read>(r: &mut R) -> io::Result<bool> {
    match codec::read_u8(r)? {
        0 => Ok(false),
        1 => Ok(true),
        t => Err(bad(format!("bad bool tag {t}"))),
    }
}

fn write_view_spec(out: &mut Vec<u8>, v: &ViewSpec) -> io::Result<()> {
    match v {
        ViewSpec::Trajectory { t } => {
            codec::write_u8(out, 0)?;
            codec::write_f32(out, *t)
        }
        ViewSpec::LookAt {
            eye,
            target,
            up,
            fov_y_deg,
        } => {
            codec::write_u8(out, 1)?;
            write_vec3(out, *eye)?;
            write_vec3(out, *target)?;
            write_vec3(out, *up)?;
            write_opt(out, fov_y_deg.as_ref(), |o, v| codec::write_f32(o, *v))
        }
        ViewSpec::Orbit {
            angle,
            radius_scale,
            height_offset,
        } => {
            codec::write_u8(out, 2)?;
            codec::write_f32(out, *angle)?;
            codec::write_f32(out, *radius_scale)?;
            codec::write_f32(out, *height_offset)
        }
    }
}

fn read_view_spec<R: Read>(r: &mut R) -> io::Result<ViewSpec> {
    match codec::read_u8(r)? {
        0 => Ok(ViewSpec::Trajectory {
            t: codec::read_f32(r)?,
        }),
        1 => Ok(ViewSpec::LookAt {
            eye: read_vec3(r)?,
            target: read_vec3(r)?,
            up: read_vec3(r)?,
            fov_y_deg: read_opt(r, |r| codec::read_f32(r))?,
        }),
        2 => Ok(ViewSpec::Orbit {
            angle: codec::read_f32(r)?,
            radius_scale: codec::read_f32(r)?,
            height_offset: codec::read_f32(r)?,
        }),
        t => Err(bad(format!("bad view spec tag {t}"))),
    }
}

fn write_stream_spec(out: &mut Vec<u8>, s: &StreamSpec) -> io::Result<()> {
    match s {
        StreamSpec::TrajectorySweep { t0, t1, frames } => {
            codec::write_u8(out, 0)?;
            codec::write_f32(out, *t0)?;
            codec::write_f32(out, *t1)?;
            codec::write_u64(out, *frames as u64)
        }
        StreamSpec::OrbitLoop {
            frames,
            radius_scale,
            height_offset,
        } => {
            codec::write_u8(out, 1)?;
            codec::write_u64(out, *frames as u64)?;
            codec::write_f32(out, *radius_scale)?;
            codec::write_f32(out, *height_offset)
        }
        StreamSpec::ViewList(views) => {
            codec::write_u8(out, 2)?;
            codec::write_u32(out, views.len() as u32)?;
            for v in views {
                write_view_spec(out, v)?;
            }
            Ok(())
        }
    }
}

fn read_stream_spec<R: Read>(r: &mut R) -> io::Result<StreamSpec> {
    match codec::read_u8(r)? {
        0 => Ok(StreamSpec::TrajectorySweep {
            t0: codec::read_f32(r)?,
            t1: codec::read_f32(r)?,
            frames: read_usize(r)?,
        }),
        1 => Ok(StreamSpec::OrbitLoop {
            frames: read_usize(r)?,
            radius_scale: codec::read_f32(r)?,
            height_offset: codec::read_f32(r)?,
        }),
        2 => {
            let n = codec::read_u32(r)? as usize;
            if n > MAX_VIEWS {
                return Err(bad(format!("view list of {n} exceeds cap {MAX_VIEWS}")));
            }
            let mut views = Vec::with_capacity(n);
            for _ in 0..n {
                views.push(read_view_spec(r)?);
            }
            Ok(StreamSpec::ViewList(views))
        }
        t => Err(bad(format!("bad stream spec tag {t}"))),
    }
}

fn write_stream_config(out: &mut Vec<u8>, c: &StreamConfig) -> io::Result<()> {
    codec::write_u8(out, priority_tag(c.priority))?;
    write_opt(out, c.deadline.as_ref(), |o, d| write_duration(o, *d))?;
    codec::write_u64(out, c.window as u64)
}

fn read_stream_config<R: Read>(r: &mut R) -> io::Result<StreamConfig> {
    Ok(StreamConfig {
        priority: read_priority(r)?,
        deadline: read_opt(r, read_duration)?,
        window: read_usize(r)?,
    })
}

fn write_render_options(out: &mut Vec<u8>, o: &RenderOptions) -> io::Result<()> {
    codec::write_u8(out, schedule_tag(o.schedule))?;
    write_opt(out, o.resolution.as_ref(), |b, (w, h)| {
        codec::write_u32(b, *w)?;
        codec::write_u32(b, *h)
    })?;
    write_opt(out, o.roi.as_ref(), |b, roi| {
        codec::write_u32(b, roi.x0)?;
        codec::write_u32(b, roi.y0)?;
        codec::write_u32(b, roi.width)?;
        codec::write_u32(b, roi.height)
    })?;
    write_opt(out, o.background.as_ref(), |b, v| write_vec3(b, *v))?;
    write_opt(out, o.alpha_min.as_ref(), |b, v| codec::write_f32(b, *v))?;
    write_opt(out, o.sh_degree.as_ref(), |b, v| codec::write_u8(b, *v))
}

fn read_render_options<R: Read>(r: &mut R) -> io::Result<RenderOptions> {
    Ok(RenderOptions {
        schedule: read_schedule(r)?,
        resolution: read_opt(r, |r| Ok((codec::read_u32(r)?, codec::read_u32(r)?)))?,
        roi: read_opt(r, |r| {
            Ok(Roi {
                x0: codec::read_u32(r)?,
                y0: codec::read_u32(r)?,
                width: codec::read_u32(r)?,
                height: codec::read_u32(r)?,
            })
        })?,
        background: read_opt(r, read_vec3)?,
        alpha_min: read_opt(r, |r| codec::read_f32(r))?,
        sh_degree: read_opt(r, |r| codec::read_u8(r))?,
    })
}

/// [`FrameStats`] fields in declaration order — the wire layout is this
/// list, 24 `u64`s, and the round-trip test pins the count so a new field
/// cannot be forgotten silently.
fn stats_fields(s: &FrameStats) -> [u64; 24] {
    [
        s.total_gaussians,
        s.geometry_loads,
        s.projected,
        s.sh_loads,
        s.rendered,
        s.render_invocations,
        s.pixels_blended,
        s.sort_elements,
        s.windows,
        s.tiles,
        s.kv_pairs,
        s.tile_loads,
        s.unique_loaded,
        s.pixels_tested,
        s.pixels_tested_aabb,
        s.pixels_tested_obb,
        s.near_culled,
        s.groups_total,
        s.groups_processed,
        s.groups_skipped,
        s.blocks_dispatched,
        s.blocks_masked_skips,
        s.pixels_evaluated,
        s.alpha_lane_evals,
    ]
}

fn write_frame_stats(out: &mut Vec<u8>, s: &FrameStats) -> io::Result<()> {
    for v in stats_fields(s) {
        codec::write_u64(out, v)?;
    }
    Ok(())
}

fn read_frame_stats<R: Read>(r: &mut R) -> io::Result<FrameStats> {
    let mut f = [0u64; 24];
    for v in &mut f {
        *v = codec::read_u64(r)?;
    }
    Ok(FrameStats {
        total_gaussians: f[0],
        geometry_loads: f[1],
        projected: f[2],
        sh_loads: f[3],
        rendered: f[4],
        render_invocations: f[5],
        pixels_blended: f[6],
        sort_elements: f[7],
        windows: f[8],
        tiles: f[9],
        kv_pairs: f[10],
        tile_loads: f[11],
        unique_loaded: f[12],
        pixels_tested: f[13],
        pixels_tested_aabb: f[14],
        pixels_tested_obb: f[15],
        near_culled: f[16],
        groups_total: f[17],
        groups_processed: f[18],
        groups_skipped: f[19],
        blocks_dispatched: f[20],
        blocks_masked_skips: f[21],
        pixels_evaluated: f[22],
        alpha_lane_evals: f[23],
    })
}

fn write_image(out: &mut Vec<u8>, img: &Image) -> io::Result<()> {
    codec::write_u32(out, img.width())?;
    codec::write_u32(out, img.height())?;
    for p in img.pixels() {
        write_vec3(out, *p)?;
    }
    Ok(())
}

fn read_image<R: Read>(r: &mut R) -> io::Result<Image> {
    let w = codec::read_u32(r)?;
    let h = codec::read_u32(r)?;
    let count = u64::from(w) * u64::from(h);
    if count > MAX_PIXELS {
        return Err(bad(format!("{w}x{h} image exceeds the {MAX_PIXELS}px cap")));
    }
    let mut img = Image::new(w, h);
    for p in img.pixels_mut() {
        *p = read_vec3(r)?;
    }
    Ok(img)
}

fn write_render_frame(out: &mut Vec<u8>, f: &Frame) -> io::Result<()> {
    write_image(out, &f.image)?;
    write_frame_stats(out, &f.stats)
}

fn read_render_frame<R: Read>(r: &mut R) -> io::Result<Frame> {
    Ok(Frame {
        image: read_image(r)?,
        stats: read_frame_stats(r)?,
    })
}

fn write_serve_stats(out: &mut Vec<u8>, s: &ServeStats) -> io::Result<()> {
    codec::write_u32(out, s.per_scene.len() as u32)?;
    for (scene, c) in &s.per_scene {
        codec::write_str(out, scene)?;
        for v in [
            c.requests,
            c.hits,
            c.misses,
            c.loads,
            c.evictions,
            c.frames,
            c.batches,
            c.retries,
            c.quarantines,
        ] {
            codec::write_u64(out, v)?;
        }
    }
    codec::write_u32(out, s.per_schedule.len() as u32)?;
    for (sched, c) in &s.per_schedule {
        codec::write_u8(out, schedule_tag(*sched))?;
        for v in [c.requests, c.frames, c.batches] {
            codec::write_u64(out, v)?;
        }
    }
    codec::write_u32(out, s.per_priority.len() as u32)?;
    for (p, c) in &s.per_priority {
        codec::write_u8(out, priority_tag(*p))?;
        for v in [
            c.requests,
            c.frames,
            c.completed,
            c.queued as u64,
            c.max_queued as u64,
            c.with_deadline,
            c.deadline_misses,
            c.rejected,
            c.shed,
        ] {
            codec::write_u64(out, v)?;
        }
        codec::write_f64(out, c.latency_p50_ms)?;
        codec::write_f64(out, c.latency_p95_ms)?;
    }
    for v in [
        s.streams.opened,
        s.streams.completed,
        s.streams.cancelled,
        s.streams.frames_discarded,
        s.completed,
        s.queue_depth as u64,
        s.max_queue_depth as u64,
        s.batches,
        s.frames,
    ] {
        codec::write_u64(out, v)?;
    }
    codec::write_f64(out, s.latency_p50_ms)?;
    codec::write_f64(out, s.latency_p95_ms)?;
    write_frame_stats(out, &s.frame_stats)?;
    for v in [
        s.resident_bytes as u64,
        s.resident_scenes as u64,
        s.respawns,
        s.lost_workers,
        s.quarantined_scenes as u64,
    ] {
        codec::write_u64(out, v)?;
    }
    write_lod_counters(out, &s.lod)?;
    Ok(())
}

fn write_lod_counters(out: &mut Vec<u8>, lod: &LodCounters) -> io::Result<()> {
    codec::write_u8(out, u8::from(lod.enabled))?;
    codec::write_u32(out, lod.frames_by_rung.len() as u32)?;
    for v in &lod.frames_by_rung {
        codec::write_u64(out, *v)?;
    }
    for v in [lod.degraded_frames, lod.degradations, lod.recoveries] {
        codec::write_u64(out, v)?;
    }
    codec::write_u32(out, lod.recent.len() as u32)?;
    for d in &lod.recent {
        codec::write_u32(out, d.rung)?;
        codec::write_u64(out, d.predicted_us)?;
        codec::write_u64(out, d.actual_us)?;
        codec::write_u64(out, d.budget_us)?;
        codec::write_u8(out, u8::from(d.missed))?;
    }
    Ok(())
}

fn read_lod_counters<R: Read>(r: &mut R) -> io::Result<LodCounters> {
    let mut lod = LodCounters {
        enabled: read_bool(r)?,
        ..LodCounters::default()
    };
    for _ in 0..codec::read_u32(r)? {
        lod.frames_by_rung.push(codec::read_u64(r)?);
    }
    lod.degraded_frames = codec::read_u64(r)?;
    lod.degradations = codec::read_u64(r)?;
    lod.recoveries = codec::read_u64(r)?;
    for _ in 0..codec::read_u32(r)? {
        lod.recent.push(LodDecision {
            rung: codec::read_u32(r)?,
            predicted_us: codec::read_u64(r)?,
            actual_us: codec::read_u64(r)?,
            budget_us: codec::read_u64(r)?,
            missed: read_bool(r)?,
        });
    }
    Ok(lod)
}

fn read_serve_stats<R: Read>(r: &mut R) -> io::Result<ServeStats> {
    let mut stats = ServeStats::default();
    for _ in 0..codec::read_u32(r)? {
        let scene = codec::read_str(r, MAX_STR_LEN)?;
        let c = SceneCounters {
            requests: codec::read_u64(r)?,
            hits: codec::read_u64(r)?,
            misses: codec::read_u64(r)?,
            loads: codec::read_u64(r)?,
            evictions: codec::read_u64(r)?,
            frames: codec::read_u64(r)?,
            batches: codec::read_u64(r)?,
            retries: codec::read_u64(r)?,
            quarantines: codec::read_u64(r)?,
        };
        stats.per_scene.insert(scene, c);
    }
    for _ in 0..codec::read_u32(r)? {
        let sched = read_schedule(r)?;
        let c = ScheduleCounters {
            requests: codec::read_u64(r)?,
            frames: codec::read_u64(r)?,
            batches: codec::read_u64(r)?,
        };
        stats.per_schedule.insert(sched, c);
    }
    for _ in 0..codec::read_u32(r)? {
        let p = read_priority(r)?;
        let c = PriorityCounters {
            requests: codec::read_u64(r)?,
            frames: codec::read_u64(r)?,
            completed: codec::read_u64(r)?,
            queued: read_usize(r)?,
            max_queued: read_usize(r)?,
            with_deadline: codec::read_u64(r)?,
            deadline_misses: codec::read_u64(r)?,
            rejected: codec::read_u64(r)?,
            shed: codec::read_u64(r)?,
            latency_p50_ms: codec::read_f64(r)?,
            latency_p95_ms: codec::read_f64(r)?,
        };
        stats.per_priority.insert(p, c);
    }
    stats.streams = StreamCounters {
        opened: codec::read_u64(r)?,
        completed: codec::read_u64(r)?,
        cancelled: codec::read_u64(r)?,
        frames_discarded: codec::read_u64(r)?,
    };
    stats.completed = codec::read_u64(r)?;
    stats.queue_depth = read_usize(r)?;
    stats.max_queue_depth = read_usize(r)?;
    stats.batches = codec::read_u64(r)?;
    stats.frames = codec::read_u64(r)?;
    stats.latency_p50_ms = codec::read_f64(r)?;
    stats.latency_p95_ms = codec::read_f64(r)?;
    stats.frame_stats = read_frame_stats(r)?;
    stats.resident_bytes = read_usize(r)?;
    stats.resident_scenes = read_usize(r)?;
    stats.respawns = codec::read_u64(r)?;
    stats.lost_workers = codec::read_u64(r)?;
    stats.quarantined_scenes = read_usize(r)?;
    stats.lod = read_lod_counters(r)?;
    Ok(stats)
}

fn write_rejection(out: &mut Vec<u8>, rej: &WireRejection) -> io::Result<()> {
    match rej {
        WireRejection::UnknownScene(s) => {
            codec::write_u8(out, 0)?;
            codec::write_str(out, s)
        }
        WireRejection::InvalidRequest(m) => {
            codec::write_u8(out, 1)?;
            codec::write_str(out, m)
        }
        WireRejection::EmptyStream => codec::write_u8(out, 2),
        WireRejection::Load { scene, message } => {
            codec::write_u8(out, 3)?;
            codec::write_str(out, scene)?;
            codec::write_str(out, message)
        }
        WireRejection::ShuttingDown => codec::write_u8(out, 4),
        WireRejection::WorkerPanicked => codec::write_u8(out, 5),
        WireRejection::Quarantined { scene, retry_after } => {
            codec::write_u8(out, 6)?;
            codec::write_str(out, scene)?;
            write_duration(out, *retry_after)
        }
        WireRejection::Overloaded { retry_after } => {
            codec::write_u8(out, 7)?;
            write_duration(out, *retry_after)
        }
        WireRejection::Unavailable {
            message,
            retry_after,
        } => {
            codec::write_u8(out, 8)?;
            codec::write_str(out, message)?;
            write_duration(out, *retry_after)
        }
    }
}

fn read_rejection<R: Read>(r: &mut R) -> io::Result<WireRejection> {
    match codec::read_u8(r)? {
        0 => Ok(WireRejection::UnknownScene(codec::read_str(
            r,
            MAX_STR_LEN,
        )?)),
        1 => Ok(WireRejection::InvalidRequest(codec::read_str(
            r,
            MAX_STR_LEN,
        )?)),
        2 => Ok(WireRejection::EmptyStream),
        3 => Ok(WireRejection::Load {
            scene: codec::read_str(r, MAX_STR_LEN)?,
            message: codec::read_str(r, MAX_STR_LEN)?,
        }),
        4 => Ok(WireRejection::ShuttingDown),
        5 => Ok(WireRejection::WorkerPanicked),
        6 => Ok(WireRejection::Quarantined {
            scene: codec::read_str(r, MAX_STR_LEN)?,
            retry_after: read_duration(r)?,
        }),
        7 => Ok(WireRejection::Overloaded {
            retry_after: read_duration(r)?,
        }),
        8 => Ok(WireRejection::Unavailable {
            message: codec::read_str(r, MAX_STR_LEN)?,
            retry_after: read_duration(r)?,
        }),
        t => Err(bad(format!("bad rejection tag {t}"))),
    }
}

// ---------------------------------------------------------------------------
// Message encode / decode
// ---------------------------------------------------------------------------

/// Finishes a decode: maps I/O truncation / semantic errors to
/// [`WireError::Malformed`] and rejects payloads with trailing bytes.
fn finish<T>(what: &str, rest: &[u8], decoded: io::Result<T>) -> Result<T, WireError> {
    let v = decoded.map_err(|e| WireError::Malformed(format!("{what}: {e}")))?;
    if rest.is_empty() {
        Ok(v)
    } else {
        Err(WireError::Malformed(format!(
            "{what}: {} trailing bytes",
            rest.len()
        )))
    }
}

impl Request {
    /// Encodes the request as a `(kind, payload)` pair for
    /// [`crate::frame::write_frame`].
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut out = Vec::new();
        let kind = match self {
            Request::Open {
                scene,
                defaults,
                spec,
                config,
            } => {
                infallible(codec::write_str(&mut out, scene));
                infallible(write_render_options(&mut out, defaults));
                infallible(write_stream_spec(&mut out, spec));
                infallible(write_stream_config(&mut out, config));
                kind::OPEN
            }
            Request::NextFrame { stream } => {
                infallible(codec::write_u64(&mut out, *stream));
                kind::NEXT_FRAME
            }
            Request::Cancel { stream } => {
                infallible(codec::write_u64(&mut out, *stream));
                kind::CANCEL
            }
            Request::Stats => kind::STATS,
            Request::Ping => kind::PING,
            Request::Shutdown => kind::SHUTDOWN,
        };
        (kind, out)
    }

    /// Decodes a request from a frame's `(kind, payload)`. Unknown kinds
    /// (including any response kind) and short, hostile or over-long
    /// payloads are [`WireError::Malformed`] — the connection survives,
    /// the request does not.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Request, WireError> {
        let mut r = payload;
        let decoded = match kind {
            kind::OPEN => (|r: &mut &[u8]| {
                Ok(Request::Open {
                    scene: codec::read_str(r, MAX_STR_LEN)?,
                    defaults: read_render_options(r)?,
                    spec: read_stream_spec(r)?,
                    config: read_stream_config(r)?,
                })
            })(&mut r),
            kind::NEXT_FRAME => codec::read_u64(&mut r).map(|stream| Request::NextFrame { stream }),
            kind::CANCEL => codec::read_u64(&mut r).map(|stream| Request::Cancel { stream }),
            kind::STATS => Ok(Request::Stats),
            kind::PING => Ok(Request::Ping),
            kind::SHUTDOWN => Ok(Request::Shutdown),
            k => {
                return Err(WireError::Malformed(format!(
                    "unknown request kind {k:#04x}"
                )))
            }
        };
        finish("request", r, decoded)
    }
}

impl Response {
    /// Encodes the response as a `(kind, payload)` pair for
    /// [`crate::frame::write_frame`].
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut out = Vec::new();
        let kind = match self {
            Response::Opened { stream, frames } => {
                infallible(codec::write_u64(&mut out, *stream));
                infallible(codec::write_u64(&mut out, *frames));
                kind::OPENED
            }
            Response::Frame {
                stream,
                index,
                frame,
            } => {
                infallible(codec::write_u64(&mut out, *stream));
                infallible(codec::write_u64(&mut out, *index));
                infallible(write_render_frame(&mut out, frame));
                kind::FRAME
            }
            Response::FrameError {
                stream,
                index,
                error,
            } => {
                infallible(codec::write_u64(&mut out, *stream));
                infallible(codec::write_u64(&mut out, *index));
                infallible(write_rejection(&mut out, error));
                kind::FRAME_ERROR
            }
            Response::StreamEnd { stream } => {
                infallible(codec::write_u64(&mut out, *stream));
                kind::STREAM_END
            }
            Response::Cancelled { stream } => {
                infallible(codec::write_u64(&mut out, *stream));
                kind::CANCELLED
            }
            Response::Rejected(rej) => {
                infallible(write_rejection(&mut out, rej));
                kind::REJECTED
            }
            Response::Stats(stats) => {
                infallible(write_serve_stats(&mut out, stats));
                kind::STATS_SNAPSHOT
            }
            Response::Pong => kind::PONG,
            Response::ShutdownAck => kind::SHUTDOWN_ACK,
            Response::Error { message } => {
                infallible(codec::write_str(&mut out, message));
                kind::ERROR
            }
        };
        (kind, out)
    }

    /// Decodes a response from a frame's `(kind, payload)`.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Response, WireError> {
        let mut r = payload;
        let decoded = match kind {
            kind::OPENED => (|r: &mut &[u8]| {
                Ok(Response::Opened {
                    stream: codec::read_u64(r)?,
                    frames: codec::read_u64(r)?,
                })
            })(&mut r),
            kind::FRAME => (|r: &mut &[u8]| {
                Ok(Response::Frame {
                    stream: codec::read_u64(r)?,
                    index: codec::read_u64(r)?,
                    frame: read_render_frame(r)?,
                })
            })(&mut r),
            kind::FRAME_ERROR => (|r: &mut &[u8]| {
                Ok(Response::FrameError {
                    stream: codec::read_u64(r)?,
                    index: codec::read_u64(r)?,
                    error: read_rejection(r)?,
                })
            })(&mut r),
            kind::STREAM_END => {
                codec::read_u64(&mut r).map(|stream| Response::StreamEnd { stream })
            }
            kind::CANCELLED => codec::read_u64(&mut r).map(|stream| Response::Cancelled { stream }),
            kind::REJECTED => read_rejection(&mut r).map(Response::Rejected),
            kind::STATS_SNAPSHOT => read_serve_stats(&mut r).map(|s| Response::Stats(Box::new(s))),
            kind::PONG => Ok(Response::Pong),
            kind::SHUTDOWN_ACK => Ok(Response::ShutdownAck),
            kind::ERROR => {
                codec::read_str(&mut r, MAX_STR_LEN).map(|message| Response::Error { message })
            }
            k => {
                return Err(WireError::Malformed(format!(
                    "unknown response kind {k:#04x}"
                )))
            }
        };
        finish("response", r, decoded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: &Request) {
        let (kind, payload) = req.encode();
        let back = Request::decode(kind, &payload).expect("decode");
        assert_eq!(*req, back);
    }

    /// `Response` carries `Frame` / `ServeStats`, which do not implement
    /// `PartialEq`; since the codec is deterministic, byte-identical
    /// re-encoding is equality.
    fn roundtrip_response(resp: &Response) {
        let (kind, payload) = resp.encode();
        let back = Response::decode(kind, &payload).expect("decode");
        let (kind2, payload2) = back.encode();
        assert_eq!(kind, kind2);
        assert_eq!(payload, payload2, "re-encode of {resp:?} diverged");
    }

    #[test]
    fn all_request_variants_roundtrip() {
        let open = Request::Open {
            scene: "palace".into(),
            defaults: RenderOptions::default()
                .with_schedule(Schedule::GccHardware)
                .at_resolution(64, 48)
                .with_roi(Roi::new(1, 2, 30, 20))
                .on_background(Vec3::new(0.1, 0.2, 0.3))
                .with_alpha_min(0.01)
                .with_sh_degree(2),
            spec: StreamSpec::TrajectorySweep {
                t0: 0.25,
                t1: 0.75,
                frames: 12,
            },
            config: StreamConfig::default()
                .with_priority(Priority::Bulk)
                .with_deadline(Duration::from_millis(33))
                .with_window(7),
        };
        roundtrip_request(&open);
        roundtrip_request(&Request::Open {
            scene: "lego".into(),
            defaults: RenderOptions::default(),
            spec: StreamSpec::ViewList(vec![
                ViewSpec::Trajectory { t: 0.5 },
                ViewSpec::LookAt {
                    eye: Vec3::new(1.0, 2.0, 3.0),
                    target: Vec3::new(0.0, 0.0, 0.0),
                    up: Vec3::new(0.0, 1.0, 0.0),
                    fov_y_deg: Some(55.0),
                },
                ViewSpec::Orbit {
                    angle: 1.25,
                    radius_scale: 0.9,
                    height_offset: -0.1,
                },
            ]),
            config: StreamConfig::default(),
        });
        roundtrip_request(&Request::Open {
            scene: "train".into(),
            defaults: RenderOptions::default(),
            spec: StreamSpec::OrbitLoop {
                frames: 8,
                radius_scale: 1.1,
                height_offset: 0.2,
            },
            config: StreamConfig::default(),
        });
        roundtrip_request(&Request::NextFrame { stream: 42 });
        roundtrip_request(&Request::Cancel { stream: u64::MAX });
        roundtrip_request(&Request::Stats);
        roundtrip_request(&Request::Ping);
        roundtrip_request(&Request::Shutdown);
    }

    #[test]
    fn all_response_variants_roundtrip() {
        let mut image = Image::new(3, 2);
        for (i, p) in image.pixels_mut().iter_mut().enumerate() {
            *p = Vec3::new(i as f32 * 0.25, 1.0 - i as f32 * 0.1, 0.5);
        }
        let frame = Frame {
            image,
            stats: FrameStats {
                total_gaussians: 100,
                rendered: 42,
                tiles: 7,
                alpha_lane_evals: 9,
                ..FrameStats::default()
            },
        };
        roundtrip_response(&Response::Opened {
            stream: 3,
            frames: 24,
        });
        roundtrip_response(&Response::Frame {
            stream: 3,
            index: 5,
            frame,
        });
        roundtrip_response(&Response::FrameError {
            stream: 3,
            index: 6,
            error: WireRejection::WorkerPanicked,
        });
        roundtrip_response(&Response::StreamEnd { stream: 3 });
        roundtrip_response(&Response::Cancelled { stream: 3 });
        for rej in [
            WireRejection::UnknownScene("mystery".into()),
            WireRejection::InvalidRequest("t out of range".into()),
            WireRejection::EmptyStream,
            WireRejection::Load {
                scene: "palace".into(),
                message: "file vanished".into(),
            },
            WireRejection::ShuttingDown,
            WireRejection::WorkerPanicked,
            WireRejection::Quarantined {
                scene: "truck".into(),
                retry_after: Duration::from_millis(250),
            },
            WireRejection::Overloaded {
                retry_after: Duration::from_micros(1500),
            },
            WireRejection::Unavailable {
                message: "shard 1 down".into(),
                retry_after: Duration::from_millis(100),
            },
        ] {
            roundtrip_response(&Response::Rejected(rej));
        }
        roundtrip_response(&Response::Pong);
        roundtrip_response(&Response::ShutdownAck);
        roundtrip_response(&Response::Error {
            message: "unknown request kind 0x7f".into(),
        });
    }

    #[test]
    fn serve_stats_roundtrip_preserves_every_counter() {
        let mut stats = ServeStats::default();
        stats.per_scene.insert(
            "palace".into(),
            SceneCounters {
                requests: 10,
                hits: 8,
                misses: 2,
                loads: 2,
                evictions: 1,
                frames: 40,
                batches: 5,
                retries: 1,
                quarantines: 0,
            },
        );
        stats.per_schedule.insert(
            Schedule::GaussianWise,
            ScheduleCounters {
                requests: 10,
                frames: 40,
                batches: 5,
            },
        );
        stats.per_priority.insert(
            Priority::Interactive,
            PriorityCounters {
                requests: 6,
                frames: 24,
                completed: 24,
                queued: 2,
                max_queued: 4,
                with_deadline: 6,
                deadline_misses: 1,
                rejected: 0,
                shed: 0,
                latency_p50_ms: 1.5,
                latency_p95_ms: 3.25,
            },
        );
        stats.streams.opened = 3;
        stats.streams.completed = 2;
        stats.streams.cancelled = 1;
        stats.streams.frames_discarded = 4;
        stats.completed = 40;
        stats.queue_depth = 1;
        stats.max_queue_depth = 9;
        stats.batches = 5;
        stats.frames = 40;
        stats.latency_p50_ms = 1.75;
        stats.latency_p95_ms = 4.5;
        stats.frame_stats.total_gaussians = 123_456;
        stats.frame_stats.alpha_lane_evals = 789;
        stats.resident_bytes = 1 << 20;
        stats.resident_scenes = 2;
        stats.respawns = 1;
        stats.lost_workers = 0;
        stats.quarantined_scenes = 1;
        stats.lod = LodCounters {
            enabled: true,
            frames_by_rung: vec![30, 6, 3, 1],
            degraded_frames: 10,
            degradations: 3,
            recoveries: 2,
            recent: vec![
                LodDecision {
                    rung: 3,
                    predicted_us: 0,
                    actual_us: 1_200,
                    budget_us: 4_000,
                    missed: false,
                },
                LodDecision {
                    rung: 0,
                    predicted_us: 9_500,
                    actual_us: 9_800,
                    budget_us: 33_000,
                    missed: true,
                },
            ],
        };

        let (kind, payload) = Response::Stats(Box::new(stats.clone())).encode();
        let back = match Response::decode(kind, &payload).expect("decode") {
            Response::Stats(s) => s,
            other => panic!("decoded {other:?}"),
        };
        assert_eq!(back.per_scene["palace"].hits, 8);
        assert_eq!(
            back.per_schedule[&Schedule::GaussianWise].frames,
            stats.per_schedule[&Schedule::GaussianWise].frames
        );
        let p = back.priority(Priority::Interactive);
        assert_eq!(p.max_queued, 4);
        assert_eq!(p.latency_p95_ms, 3.25);
        assert_eq!(back.streams.frames_discarded, 4);
        assert_eq!(back.frame_stats.total_gaussians, 123_456);
        assert_eq!(back.resident_bytes, 1 << 20);
        assert_eq!(back.quarantined_scenes, 1);
        assert_eq!(back.lod, stats.lod);
    }

    #[test]
    fn wire_rejection_mirrors_serve_error() {
        let err = ServeError::Quarantined {
            scene: "lego".into(),
            retry_after: Duration::from_millis(40),
        };
        assert_eq!(
            WireRejection::from(&err),
            WireRejection::Quarantined {
                scene: "lego".into(),
                retry_after: Duration::from_millis(40),
            }
        );
        let err = ServeError::Overloaded {
            retry_after: Duration::from_millis(25),
        };
        assert_eq!(
            WireRejection::from(&err),
            WireRejection::Overloaded {
                retry_after: Duration::from_millis(25),
            }
        );
    }

    #[test]
    fn trailing_bytes_and_bad_tags_are_malformed() {
        let (kind, mut payload) = Request::Ping.encode();
        payload.push(0);
        assert!(matches!(
            Request::decode(kind, &payload),
            Err(WireError::Malformed(_))
        ));

        // Response kind on the request side.
        assert!(matches!(
            Request::decode(kind::PONG, &[]),
            Err(WireError::Malformed(_))
        ));

        // Truncated payload.
        let (kind, payload) = Request::NextFrame { stream: 7 }.encode();
        assert!(matches!(
            Request::decode(kind, &payload[..3]),
            Err(WireError::Malformed(_))
        ));

        // Hostile view-list length with a short payload: rejected by the
        // cap, not by a failed allocation.
        let mut payload = Vec::new();
        codec::write_str(&mut payload, "palace").unwrap();
        write_render_options(&mut payload, &RenderOptions::default()).unwrap();
        codec::write_u8(&mut payload, 2).unwrap(); // ViewList tag
        codec::write_u32(&mut payload, u32::MAX).unwrap();
        let err = Request::decode(kind::OPEN, &payload).unwrap_err();
        assert!(matches!(err, WireError::Malformed(ref m) if m.contains("cap")));

        // Bad schedule tag.
        let mut payload = Vec::new();
        codec::write_str(&mut payload, "palace").unwrap();
        codec::write_u8(&mut payload, 250).unwrap();
        assert!(matches!(
            Request::decode(kind::OPEN, &payload),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn huge_image_header_is_rejected_before_allocation() {
        let mut payload = Vec::new();
        codec::write_u64(&mut payload, 1).unwrap(); // stream
        codec::write_u64(&mut payload, 0).unwrap(); // index
        codec::write_u32(&mut payload, u32::MAX).unwrap(); // width
        codec::write_u32(&mut payload, u32::MAX).unwrap(); // height
        let err = Response::decode(kind::FRAME, &payload).unwrap_err();
        assert!(matches!(err, WireError::Malformed(ref m) if m.contains("cap")));
    }
}
