//! The transport layer: length-prefixed, versioned frames over any
//! byte stream, and the typed errors of the wire.
//!
//! Every message — request or response — travels as one frame:
//!
//! ```text
//! ┌────────────┬─────────┬──────┬──────────────────┐
//! │ len: u32 LE│ version │ kind │ payload          │
//! │            │   u8    │  u8  │ (len - 2 bytes)  │
//! └────────────┴─────────┴──────┴──────────────────┘
//! ```
//!
//! `len` counts everything after itself (version byte + kind byte +
//! payload), so a reader always knows how many bytes to consume before
//! the next frame starts. That makes every malformed-frame condition
//! recoverable without closing the connection: a bad version or unknown
//! kind is detected *after* the declared bytes were consumed, and an
//! oversized declaration is drained in bounded chunks — either way the
//! reader is positioned at the next frame boundary and the peer gets a
//! typed error instead of a dropped connection. The only unrecoverable
//! shape is a length prefix truncated mid-read (the boundary itself is
//! gone).
//!
//! Versioning rule: the version byte is per-frame, not per-connection. A
//! reader accepts exactly [`WIRE_VERSION`]; anything else is rejected
//! with [`WireError::BadVersion`] after resync, so a future v2 peer
//! talking to a v1 server gets a typed error per frame rather than a
//! desynced stream.

use std::io::{self, Read, Write};

use gcc_scene::codec;

use crate::proto::WireRejection;

/// The wire protocol version this build speaks.
///
/// History: v1 was the original protocol; v2 extended the `Stats`
/// response payload with the adaptive-quality (LOD) counter section.
pub const WIRE_VERSION: u8 = 2;

/// Hard ceiling on a frame's declared length (version + kind + payload).
/// Generous enough for a 4K float frame, small enough that a hostile
/// length prefix cannot force an unbounded allocation.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// Errors of the wire layer, both transport-level (framing, I/O) and
/// service-level ([`WireError::Rejected`] carries the peer's typed
/// rejection).
#[derive(Debug)]
pub enum WireError {
    /// Underlying socket failure.
    Io(io::Error),
    /// The peer spoke a different protocol version. The frame was
    /// consumed; the connection remains usable.
    BadVersion {
        /// The version byte received.
        got: u8,
    },
    /// The frame declared a length beyond [`MAX_FRAME_LEN`]. The
    /// declared bytes were drained; the connection remains usable.
    Oversized {
        /// The declared length.
        len: u32,
        /// The ceiling it exceeded.
        max: u32,
    },
    /// The frame or its payload did not parse (unknown kind, truncated
    /// payload, trailing bytes, out-of-range tag).
    Malformed(String),
    /// The peer answered with a typed service rejection.
    Rejected(WireRejection),
    /// The peer violated the request/response protocol (unexpected
    /// response kind, or a `ProtocolError` response it sent us).
    Protocol(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "wire i/o error: {e}"),
            Self::BadVersion { got } => {
                write!(
                    f,
                    "unsupported wire version {got} (this build speaks {WIRE_VERSION})"
                )
            }
            Self::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte ceiling")
            }
            Self::Malformed(m) => write!(f, "malformed wire frame: {m}"),
            Self::Rejected(r) => write!(f, "request rejected: {r}"),
            Self::Protocol(m) => write!(f, "wire protocol violation: {m}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// What one read attempt at a frame boundary observed.
#[derive(Debug)]
pub enum FrameEvent {
    /// A complete frame: its kind byte and payload.
    Frame {
        /// The kind byte (request/response discriminant).
        kind: u8,
        /// The payload bytes after version and kind.
        payload: Vec<u8>,
    },
    /// The peer closed the connection cleanly at a frame boundary.
    Eof,
    /// A read timeout expired with no bytes received — the connection is
    /// idle at a frame boundary. Only observed on sockets with a read
    /// timeout; callers poll their stop conditions on it.
    Idle,
}

/// Writes one frame. The caller flushes (frames are usually written
/// through a `BufWriter`, one flush per request/response turn).
///
/// # Errors
///
/// [`WireError::Oversized`] when the payload would exceed
/// [`MAX_FRAME_LEN`]; writer failures otherwise.
pub fn write_frame<W: Write>(w: &mut W, kind: u8, payload: &[u8]) -> Result<(), WireError> {
    let len = payload.len() as u64 + 2;
    if len > u64::from(MAX_FRAME_LEN) {
        return Err(WireError::Oversized {
            len: len.min(u64::from(u32::MAX)) as u32,
            max: MAX_FRAME_LEN,
        });
    }
    codec::write_u32(w, len as u32)?;
    codec::write_u8(w, WIRE_VERSION)?;
    codec::write_u8(w, kind)?;
    w.write_all(payload)?;
    Ok(())
}

/// Fills `buf` from `r`, retrying interrupted and timed-out reads (a
/// timeout mid-frame means the rest of the frame is still in flight, not
/// that the peer is gone — giving up there would desync the stream).
fn read_exact_patient<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::Interrupted
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::WouldBlock
                ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Reads one frame (or observes EOF / idleness) at a frame boundary.
///
/// Resync guarantee: on [`WireError::BadVersion`], [`WireError::Oversized`]
/// and unknown-kind [`WireError::Malformed`] errors the declared frame
/// bytes have been fully consumed, so the reader sits at the next frame
/// boundary and the caller may keep the connection. [`WireError::Io`]
/// and truncation errors are fatal to the connection.
///
/// # Errors
///
/// As described above.
pub fn read_event<R: Read>(r: &mut R) -> Result<FrameEvent, WireError> {
    // The length prefix is read byte-wise so a clean close (EOF before
    // any byte) and an idle timeout (no bytes yet) are distinguishable
    // from a truncated prefix (EOF/timeout after some bytes).
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match r.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(FrameEvent::Eof),
            Ok(0) => {
                return Err(WireError::Malformed(
                    "connection closed inside a length prefix".into(),
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if filled == 0
                    && matches!(
                        e.kind(),
                        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                    ) =>
            {
                return Ok(FrameEvent::Idle)
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                ) => {}
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(prefix);
    if len < 2 {
        return Err(WireError::Malformed(format!(
            "frame length {len} below the 2-byte version+kind minimum"
        )));
    }
    if len > MAX_FRAME_LEN {
        // Drain the declared bytes in bounded chunks so the stream
        // resyncs at the next boundary without a matching allocation.
        let mut remaining = u64::from(len);
        let mut chunk = [0u8; 64 << 10];
        while remaining > 0 {
            let take = remaining.min(chunk.len() as u64) as usize;
            read_exact_patient(r, &mut chunk[..take]).map_err(|e| {
                WireError::Malformed(format!("oversized frame truncated while draining: {e}"))
            })?;
            remaining -= take as u64;
        }
        return Err(WireError::Oversized {
            len,
            max: MAX_FRAME_LEN,
        });
    }
    let mut body = vec![0u8; len as usize];
    read_exact_patient(r, &mut body)
        .map_err(|e| WireError::Malformed(format!("frame truncated: {e}")))?;
    let version = body[0];
    let kind = body[1];
    body.drain(..2);
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion { got: version });
    }
    Ok(FrameEvent::Frame {
        kind,
        payload: body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 0x42, b"payload").unwrap();
        write_frame(&mut buf, 0x01, b"").unwrap();
        let mut r = buf.as_slice();
        match read_event(&mut r).unwrap() {
            FrameEvent::Frame { kind, payload } => {
                assert_eq!(kind, 0x42);
                assert_eq!(payload, b"payload");
            }
            other => panic!("expected a frame, got {other:?}"),
        }
        match read_event(&mut r).unwrap() {
            FrameEvent::Frame { kind, payload } => {
                assert_eq!(kind, 0x01);
                assert!(payload.is_empty());
            }
            other => panic!("expected a frame, got {other:?}"),
        }
        assert!(matches!(read_event(&mut r).unwrap(), FrameEvent::Eof));
    }

    #[test]
    fn layout_is_pinned() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 0x05, &[0xAA, 0xBB]).unwrap();
        // len = 4 (2 payload + version + kind), then version, kind, payload.
        assert_eq!(buf, vec![4, 0, 0, 0, WIRE_VERSION, 0x05, 0xAA, 0xBB]);
    }

    #[test]
    fn bad_version_is_typed_and_resyncs() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 0x05, b"xy").unwrap();
        buf[4] = 99; // corrupt the version byte
        write_frame(&mut buf, 0x07, b"ok").unwrap();
        let mut r = buf.as_slice();
        assert!(matches!(
            read_event(&mut r),
            Err(WireError::BadVersion { got: 99 })
        ));
        // The stream resynced: the next frame reads cleanly.
        match read_event(&mut r).unwrap() {
            FrameEvent::Frame { kind, payload } => {
                assert_eq!(kind, 0x07);
                assert_eq!(payload, b"ok");
            }
            other => panic!("expected the follow-up frame, got {other:?}"),
        }
    }

    #[test]
    fn oversized_frames_drain_and_resync() {
        let mut buf = Vec::new();
        let huge = MAX_FRAME_LEN + 8;
        buf.extend_from_slice(&huge.to_le_bytes());
        buf.extend(std::iter::repeat_n(0u8, huge as usize));
        write_frame(&mut buf, 0x03, b"after").unwrap();
        let mut r = buf.as_slice();
        match read_event(&mut r) {
            Err(WireError::Oversized { len, max }) => {
                assert_eq!(len, huge);
                assert_eq!(max, MAX_FRAME_LEN);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
        assert!(matches!(
            read_event(&mut r).unwrap(),
            FrameEvent::Frame { kind: 0x03, .. }
        ));
    }

    #[test]
    fn truncated_prefix_and_body_are_fatal_malformed() {
        // EOF inside the length prefix.
        let mut r = &[0x10u8, 0x00][..];
        assert!(matches!(read_event(&mut r), Err(WireError::Malformed(_))));
        // EOF inside the declared body.
        let mut buf = Vec::new();
        write_frame(&mut buf, 0x02, b"full payload").unwrap();
        buf.truncate(buf.len() - 3);
        let mut r = buf.as_slice();
        assert!(matches!(read_event(&mut r), Err(WireError::Malformed(_))));
        // A declared length below version+kind.
        let mut r = &[0x01u8, 0, 0, 0, 0x01][..];
        assert!(matches!(read_event(&mut r), Err(WireError::Malformed(_))));
    }
}
