//! The standalone wire server: a TCP accept loop feeding a supervised
//! connection-handler pool, all multiplexed onto one
//! [`RenderService`].
//!
//! # Threading model
//!
//! One plain thread blocks in `accept` and enqueues sockets; a
//! [`gcc_parallel::WorkerPool`] of handler threads dequeues them, and
//! each handler owns one live connection end-to-end (a client gets a
//! dedicated handler thread for the life of its connection; excess
//! connections queue until a handler frees up). Handlers run under the
//! pool's supervision: a panic inside a connection handler closes that
//! one socket, the worker respawns with fresh state, and the listener —
//! and every other connection — survives.
//!
//! # Shutdown
//!
//! There is no dependency-free portable signal handling, so the wire
//! [`Request::Shutdown`] *is* the SIGTERM equivalent: it flips the server
//! into draining (new `Open`s are rejected with
//! [`WireRejection::ShuttingDown`], open streams keep delivering), and
//! [`WireServer::shutdown_requested`] lets the hosting binary observe it
//! and call [`WireServer::shutdown`], which waits up to the configured
//! drain window for connections to quiesce before stopping the pool and
//! consuming the service.

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gcc_parallel::{RestartPolicy, WorkerPool, WorkerStep};
use gcc_serve::session::FrameStream;
use gcc_serve::{RenderService, ServeStats};

use crate::frame::{read_event, write_frame, FrameEvent, WireError};
use crate::proto::{Request, Response, WireRejection};

/// How long a handler blocks in a socket read before polling its stop
/// flag. Bounds shutdown latency for idle connections.
const READ_TICK: Duration = Duration::from_millis(200);

/// How long a handler waits for a queued connection before re-checking
/// the stop flag.
const QUEUE_TICK: Duration = Duration::from_millis(100);

/// Tuning for [`WireServer`].
#[derive(Debug, Clone)]
pub struct WireServerConfig {
    /// Connection-handler threads — the concurrent-client ceiling
    /// (further connections queue). Values below 1 are treated as 1.
    pub handlers: usize,
    /// How long [`WireServer::shutdown`] waits for live connections to
    /// quiesce before stopping their handlers mid-stream.
    pub drain: Duration,
}

impl Default for WireServerConfig {
    fn default() -> Self {
        Self {
            handlers: 8,
            drain: Duration::from_secs(5),
        }
    }
}

/// Everything the accept thread, the handler pool and the shutdown path
/// share.
struct ServerShared {
    service: RenderService,
    conns: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    /// Handlers and the accept loop exit when set.
    stop: AtomicBool,
    /// New streams are rejected with `ShuttingDown` when set; open
    /// streams keep delivering.
    draining: AtomicBool,
    /// A client sent [`Request::Shutdown`]; the hosting binary polls
    /// this.
    shutdown_requested: AtomicBool,
    /// Connections currently owned by a handler (drain waits on this).
    active: AtomicUsize,
}

/// A running wire server bound to a TCP address.
pub struct WireServer {
    shared: Option<Arc<ServerShared>>,
    addr: SocketAddr,
    drain: Duration,
    accept: Option<JoinHandle<()>>,
    pool: Option<WorkerPool>,
}

impl std::fmt::Debug for WireServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl WireServer {
    /// Binds the listener and starts the accept loop and handler pool.
    /// Bind to port 0 for an ephemeral port; [`Self::local_addr`] reports
    /// the real one.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: RenderService,
        cfg: WireServerConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            service,
            conns: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            active: AtomicUsize::new(0),
        });

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("gcc-wire-accept".into())
                .spawn(move || accept_loop(&listener, &shared))?
        };

        let pool = {
            let shared = Arc::clone(&shared);
            WorkerPool::spawn_supervised(
                cfg.handlers.max(1),
                || (),
                move |_worker, ()| handler_step(&shared),
                RestartPolicy::default(),
            )
        };

        Ok(Self {
            shared: Some(shared),
            addr,
            drain: cfg.drain,
            accept: Some(accept),
            pool: Some(pool),
        })
    }

    /// The bound address (with the real port after an ephemeral bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether any client has sent [`Request::Shutdown`]. The hosting
    /// binary polls this and then calls [`Self::shutdown`].
    pub fn shutdown_requested(&self) -> bool {
        self.shared
            .as_ref()
            .is_some_and(|s| s.shutdown_requested.load(Ordering::Acquire))
    }

    /// Drains and stops the server: rejects new streams, waits up to the
    /// configured drain window for live connections to quiesce, stops the
    /// accept loop and handler pool, and shuts the underlying service
    /// down. Returns the service's final statistics.
    pub fn shutdown(mut self) -> ServeStats {
        let shared = self.shared.take().expect("shutdown runs once");
        shared.draining.store(true, Ordering::Release);
        let deadline = Instant::now() + self.drain;
        while Instant::now() < deadline {
            let quiesced = shared.active.load(Ordering::Acquire) == 0
                && shared.conns.lock().expect("conns lock").is_empty();
            if quiesced {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        self.stop_threads(&shared);
        let shared = Arc::try_unwrap(shared)
            .unwrap_or_else(|_| panic!("all server threads joined, no Arc clones remain"));
        shared.service.shutdown()
    }

    /// Sets the stop flag, wakes every blocked thread, and joins them.
    fn stop_threads(&mut self, shared: &Arc<ServerShared>) {
        shared.stop.store(true, Ordering::Release);
        shared.available.notify_all();
        // The accept thread blocks in `accept`; a throwaway connection
        // wakes it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(pool) = self.pool.take() {
            pool.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        // `shutdown` already took the shared state on the graceful path;
        // this only runs for servers dropped without it (tests, error
        // paths) and skips the drain wait.
        if let Some(shared) = self.shared.take() {
            self.stop_threads(&shared);
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &ServerShared) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.stop.load(Ordering::Acquire) {
                    return; // the wake-up connection, or a late arrival
                }
                let mut conns = shared.conns.lock().expect("conns lock");
                conns.push_back(stream);
                drop(conns);
                shared.available.notify_one();
            }
            Err(_) if shared.stop.load(Ordering::Acquire) => return,
            // Transient accept errors (EMFILE, aborted handshake) leave
            // the listener usable; keep serving.
            Err(_) => {}
        }
    }
}

/// One supervised pool step: wait for a connection, own it to completion.
fn handler_step(shared: &Arc<ServerShared>) -> WorkerStep {
    let stream = {
        let conns = shared.conns.lock().expect("conns lock");
        let (mut conns, _timeout) = shared
            .available
            .wait_timeout_while(conns, QUEUE_TICK, |q| {
                q.is_empty() && !shared.stop.load(Ordering::Acquire)
            })
            .expect("conns lock");
        if shared.stop.load(Ordering::Acquire) {
            return WorkerStep::Stop;
        }
        match conns.pop_front() {
            Some(s) => s,
            None => return WorkerStep::Continue, // timed out, poll again
        }
    };
    shared.active.fetch_add(1, Ordering::AcqRel);
    // Balance the counter even if the handler panics (the pool catches
    // the panic and respawns the worker; a stuck counter would make
    // drain wait its full window for a connection that is already gone).
    struct ActiveGuard<'a>(&'a AtomicUsize);
    impl Drop for ActiveGuard<'_> {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::AcqRel);
        }
    }
    let _guard = ActiveGuard(&shared.active);
    handle_connection(shared, stream);
    WorkerStep::Continue
}

/// Per-connection bookkeeping for one open stream.
struct StreamEntry {
    frames: FrameStream,
    /// Index of the next frame slot to resolve.
    next_index: u64,
}

/// Serves one connection until EOF, a fatal transport error, or server
/// stop. Malformed frames, bad versions and oversized frames get a
/// [`Response::Error`] and the connection survives (the transport
/// guarantees the stream is resynced; see [`crate::frame::read_event`]).
fn handle_connection(shared: &Arc<ServerShared>, stream: TcpStream) {
    if stream.set_nodelay(true).is_err() || stream.set_read_timeout(Some(READ_TICK)).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut streams: HashMap<u64, StreamEntry> = HashMap::new();
    let mut next_id: u64 = 1;

    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        let outcome = match read_event(&mut reader) {
            Ok(FrameEvent::Frame { kind, payload }) => match Request::decode(kind, &payload) {
                Ok(req) => dispatch(shared, &mut streams, &mut next_id, req),
                Err(e) => protocol_error(&e),
            },
            Ok(FrameEvent::Eof) => return,
            Ok(FrameEvent::Idle) => continue,
            // Typed, resynced transport errors: tell the peer, keep the
            // connection.
            Err(e @ (WireError::BadVersion { .. } | WireError::Oversized { .. })) => {
                protocol_error(&e)
            }
            // Truncation, I/O failure: the frame boundary is gone.
            Err(_) => return,
        };
        match outcome {
            Some(resp) => {
                if respond(&mut writer, &resp).is_err() {
                    return;
                }
            }
            None => return,
        }
    }
}

fn protocol_error(e: &WireError) -> Option<Response> {
    Some(Response::Error {
        message: e.to_string(),
    })
}

/// Handles one decoded request. `None` means the connection should close
/// (never produced today; kept so stream-fatal dispatch outcomes have a
/// place to go without reshaping the loop).
fn dispatch(
    shared: &Arc<ServerShared>,
    streams: &mut HashMap<u64, StreamEntry>,
    next_id: &mut u64,
    req: Request,
) -> Option<Response> {
    let resp = match req {
        Request::Open {
            scene,
            defaults,
            spec,
            config,
        } => {
            if shared.draining.load(Ordering::Acquire) {
                Response::Rejected(WireRejection::ShuttingDown)
            } else {
                let opened = shared
                    .service
                    .session(scene, defaults)
                    .and_then(|session| session.stream_with(spec, config));
                match opened {
                    Ok(frames) => {
                        let id = *next_id;
                        *next_id += 1;
                        let total = frames.len() as u64;
                        streams.insert(
                            id,
                            StreamEntry {
                                frames,
                                next_index: 0,
                            },
                        );
                        Response::Opened {
                            stream: id,
                            frames: total,
                        }
                    }
                    Err(e) => Response::Rejected(WireRejection::from(&e)),
                }
            }
        }
        Request::NextFrame { stream } => match streams.get_mut(&stream) {
            // Unknown or finished ids answer `StreamEnd` instead of a
            // protocol error: a client draining a stream races its own
            // cancel, and idempotent pulls keep that race harmless.
            None => Response::StreamEnd { stream },
            Some(entry) => match entry.frames.next_frame() {
                Some(Ok(frame)) => {
                    let index = entry.next_index;
                    entry.next_index += 1;
                    Response::Frame {
                        stream,
                        index,
                        frame,
                    }
                }
                Some(Err(e)) => {
                    let index = entry.next_index;
                    entry.next_index += 1;
                    Response::FrameError {
                        stream,
                        index,
                        error: WireRejection::from(&e),
                    }
                }
                None => {
                    streams.remove(&stream);
                    Response::StreamEnd { stream }
                }
            },
        },
        Request::Cancel { stream } => {
            if let Some(mut entry) = streams.remove(&stream) {
                entry.frames.cancel();
            }
            Response::Cancelled { stream }
        }
        Request::Stats => Response::Stats(Box::new(shared.service.stats())),
        Request::Ping => Response::Pong,
        Request::Shutdown => {
            shared.draining.store(true, Ordering::Release);
            shared.shutdown_requested.store(true, Ordering::Release);
            Response::ShutdownAck
        }
    };
    Some(resp)
}

/// Writes one response frame and flushes. A response too large for the
/// transport (a frame image past [`crate::frame::MAX_FRAME_LEN`]) is
/// downgraded to a [`Response::Error`] so the connection stays in sync
/// instead of dying mid-write.
fn respond(writer: &mut BufWriter<TcpStream>, resp: &Response) -> Result<(), WireError> {
    let (kind, payload) = resp.encode();
    match write_frame(writer, kind, &payload) {
        Ok(()) => {}
        Err(WireError::Oversized { len, max }) => {
            let fallback = Response::Error {
                message: format!("response frame of {len} bytes exceeds the {max}-byte ceiling"),
            };
            let (kind, payload) = fallback.encode();
            write_frame(writer, kind, &payload)?;
        }
        Err(e) => return Err(e),
    }
    writer.flush().map_err(WireError::Io)
}
