//! A blocking wire client: one TCP connection, strict request/response.
//!
//! The protocol is pull-based: after [`WireClient::open`] the server
//! holds the stream's frames behind its own in-flight window and the
//! client fetches them one [`WireClient::next_frame`] at a time. Client
//! pull cadence composes with the server-side window into end-to-end
//! backpressure — a slow client never forces the server to buffer more
//! than `StreamConfig::window` undelivered frames.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use gcc_render::{Frame, RenderOptions};
use gcc_serve::{ServeStats, StreamConfig, StreamSpec};

use crate::frame::{read_event, write_frame, FrameEvent, WireError};
use crate::proto::{Request, Response};

/// A client-side handle to one open wire stream. Plain data: all I/O goes
/// through the [`WireClient`] that opened it.
#[derive(Debug, Clone)]
pub struct RemoteStream {
    id: u64,
    total: u64,
    delivered: u64,
    done: bool,
}

impl RemoteStream {
    /// The connection-scoped stream id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Total frames the stream will resolve (delivery or typed error).
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether the stream resolves zero frames (never true for admitted
    /// streams — zero-frame specs are rejected at open).
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Frame slots resolved so far (delivered frames + typed per-frame
    /// errors).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Whether the stream has ended (all frames resolved, cancelled, or
    /// ended by the server).
    pub fn is_done(&self) -> bool {
        self.done
    }
}

/// A blocking client for one `gcc-served` (or `gcc-shard`) connection.
pub struct WireClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl std::fmt::Debug for WireClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireClient")
            .field("peer", &self.reader.get_ref().peer_addr().ok())
            .finish()
    }
}

impl WireClient {
    /// Connects to a wire server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream)
    }

    /// Connects with a bounded connect timeout — what health probes use,
    /// so one dead backend cannot stall the prober for the OS default
    /// (minutes).
    ///
    /// # Errors
    ///
    /// Propagates connection failures and the timeout.
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        Self::from_stream(stream)
    }

    fn from_stream(stream: TcpStream) -> io::Result<Self> {
        // Frames are written in one flush per turn; Nagle would add a
        // delayed-ACK round trip to every pull.
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Bounds how long one response may take to start arriving. `None`
    /// blocks indefinitely (the default).
    ///
    /// # Errors
    ///
    /// Propagates `setsockopt` failures.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// One request/response turn. Responses arrive in request order;
    /// [`Response::Error`] (the server could not parse what we sent) is
    /// surfaced as [`WireError::Protocol`].
    ///
    /// # Errors
    ///
    /// Transport and protocol failures as described.
    pub fn call(&mut self, req: &Request) -> Result<Response, WireError> {
        let (kind, payload) = req.encode();
        write_frame(&mut self.writer, kind, &payload)?;
        self.writer.flush().map_err(WireError::Io)?;
        loop {
            match read_event(&mut self.reader)? {
                FrameEvent::Frame { kind, payload } => {
                    let resp = Response::decode(kind, &payload)?;
                    if let Response::Error { message } = resp {
                        return Err(WireError::Protocol(format!(
                            "server rejected our frame: {message}"
                        )));
                    }
                    return Ok(resp);
                }
                FrameEvent::Eof => {
                    return Err(WireError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection mid-call",
                    )))
                }
                // A read timeout while a response is pending: keep
                // waiting. Callers bound the total wait with
                // `set_read_timeout` plus their own clocks if they need a
                // hard deadline.
                FrameEvent::Idle => {}
            }
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`WireError::Protocol`] on a non-`Pong`
    /// answer.
    pub fn ping(&mut self) -> Result<(), WireError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Snapshots the server's service statistics.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`WireError::Protocol`] on an unexpected
    /// answer.
    pub fn stats(&mut self) -> Result<ServeStats, WireError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(*s),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Asks the server to drain and exit (the wire SIGTERM).
    ///
    /// # Errors
    ///
    /// Transport failures, or [`WireError::Protocol`] on an unexpected
    /// answer.
    pub fn shutdown_server(&mut self) -> Result<(), WireError> {
        match self.call(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(unexpected("ShutdownAck", &other)),
        }
    }

    /// Opens a frame stream. A typed refusal ([`Response::Rejected`])
    /// surfaces as [`WireError::Rejected`] so callers can match on
    /// `Overloaded`/`Quarantined` retry hints.
    ///
    /// # Errors
    ///
    /// Transport failures and typed rejections as described.
    pub fn open(
        &mut self,
        scene: &str,
        defaults: RenderOptions,
        spec: StreamSpec,
        config: StreamConfig,
    ) -> Result<RemoteStream, WireError> {
        let req = Request::Open {
            scene: scene.to_string(),
            defaults,
            spec,
            config,
        };
        match self.call(&req)? {
            Response::Opened { stream, frames } => Ok(RemoteStream {
                id: stream,
                total: frames,
                delivered: 0,
                done: false,
            }),
            Response::Rejected(rej) => Err(WireError::Rejected(rej)),
            other => Err(unexpected("Opened", &other)),
        }
    }

    /// Pulls the stream's next in-order frame.
    ///
    /// `Ok(Some(frame))` is the next frame; `Ok(None)` means the stream
    /// has delivered everything (the handle is marked done). A per-frame
    /// typed error arrives as `Err(WireError::Rejected(..))` — the stream
    /// slot is consumed and later frames may still follow; check
    /// [`RemoteStream::is_done`].
    ///
    /// # Errors
    ///
    /// Transport failures, per-frame rejections, and protocol violations.
    pub fn next_frame(&mut self, stream: &mut RemoteStream) -> Result<Option<Frame>, WireError> {
        if stream.done {
            return Ok(None);
        }
        match self.call(&Request::NextFrame { stream: stream.id })? {
            Response::Frame {
                stream: id, frame, ..
            } if id == stream.id => {
                stream.delivered += 1;
                Ok(Some(frame))
            }
            Response::FrameError {
                stream: id, error, ..
            } if id == stream.id => {
                stream.delivered += 1;
                Err(WireError::Rejected(error))
            }
            Response::StreamEnd { stream: id } if id == stream.id => {
                stream.done = true;
                Ok(None)
            }
            other => Err(unexpected("Frame/FrameError/StreamEnd", &other)),
        }
    }

    /// Cancels the stream, discarding undelivered frames. Idempotent.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`WireError::Protocol`] on an unexpected
    /// answer.
    pub fn cancel(&mut self, stream: &mut RemoteStream) -> Result<(), WireError> {
        match self.call(&Request::Cancel { stream: stream.id })? {
            Response::Cancelled { .. } => {
                stream.done = true;
                Ok(())
            }
            other => Err(unexpected("Cancelled", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> WireError {
    // Stats snapshots are huge; name the variant, not the payload.
    let got = match got {
        Response::Opened { .. } => "Opened",
        Response::Frame { .. } => "Frame",
        Response::FrameError { .. } => "FrameError",
        Response::StreamEnd { .. } => "StreamEnd",
        Response::Cancelled { .. } => "Cancelled",
        Response::Rejected(_) => "Rejected",
        Response::Stats(_) => "Stats",
        Response::Pong => "Pong",
        Response::ShutdownAck => "ShutdownAck",
        Response::Error { .. } => "Error",
    };
    WireError::Protocol(format!("expected {wanted}, got {got}"))
}
