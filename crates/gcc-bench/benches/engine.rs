//! Criterion benches of the parallel frame engine: the same frame through
//! sequential and multi-threaded schedules, plus a trajectory batch.
//! This is the acceptance check that intra-frame parallelism beats
//! single-threaded rendering on a multi-core host.

use criterion::{criterion_group, criterion_main, Criterion};
use gcc_parallel::Parallelism;
use gcc_render::gaussian_wise::{render_gaussian_wise_with, GaussianWiseConfig};
use gcc_render::standard::{render_standard_with, StandardConfig};
use gcc_render::StandardRenderer;
use gcc_scene::{SceneConfig, ScenePreset, TrajectoryRunner};

fn bench_standard_engine(c: &mut Criterion) {
    let scene = ScenePreset::Train.build(&SceneConfig::with_scale(0.2));
    let cam = scene.default_camera();
    let cfg = StandardConfig::default();
    let mut group = c.benchmark_group("standard_frame_engine");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| render_standard_with(&scene.gaussians, &cam, &cfg, Parallelism::Sequential))
    });
    group.bench_function("threads_auto", |b| {
        b.iter(|| render_standard_with(&scene.gaussians, &cam, &cfg, Parallelism::Auto))
    });
    group.finish();
}

fn bench_gaussian_wise_engine(c: &mut Criterion) {
    let scene = ScenePreset::Train.build(&SceneConfig::with_scale(0.2));
    let cam = scene.default_camera();
    // Intra-frame parallelism for the Gaussian-wise schedule comes from
    // Cmode sub-views.
    let cfg = GaussianWiseConfig {
        subview: Some(32),
        ..GaussianWiseConfig::default()
    };
    let mut group = c.benchmark_group("gaussian_wise_frame_engine_cmode32");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| render_gaussian_wise_with(&scene.gaussians, &cam, &cfg, Parallelism::Sequential))
    });
    group.bench_function("threads_auto", |b| {
        b.iter(|| render_gaussian_wise_with(&scene.gaussians, &cam, &cfg, Parallelism::Auto))
    });
    group.finish();
}

fn bench_trajectory_batch(c: &mut Criterion) {
    let scene = ScenePreset::Lego.build(&SceneConfig::with_scale(0.1));
    let renderer = StandardRenderer::reference();
    let mut group = c.benchmark_group("trajectory_8_frames");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            TrajectoryRunner::new(8)
                .with_parallelism(Parallelism::Sequential)
                .run(&scene, &renderer)
        })
    });
    group.bench_function("threads_auto", |b| {
        b.iter(|| {
            TrajectoryRunner::new(8)
                .with_parallelism(Parallelism::Auto)
                .run(&scene, &renderer)
        })
    });
    group.finish();
}

criterion_group!(
    engine,
    bench_standard_engine,
    bench_gaussian_wise_engine,
    bench_trajectory_batch
);
criterion_main!(engine);
