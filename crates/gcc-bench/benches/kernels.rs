//! Criterion microbenches of the pipeline's core kernels: SH evaluation,
//! EWA projection, alpha arithmetic (exact vs LUT) and Algorithm 1 block
//! traversal vs a naive footprint scan.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gcc_core::alpha::{gaussian_alpha, ExpMode};
use gcc_core::boundary::{BlockGrid, BlockTracer, MaskMode, PixelTracer};
use gcc_core::bounds::{BoundingLaw, EffectiveTest, PixelRect};
use gcc_core::projection::project_gaussian;
use gcc_core::{sh, Camera, Gaussian3D};
use gcc_math::{PwlExp, SymMat2, Vec2, Vec3};

fn bench_sh(c: &mut Criterion) {
    let mut coeffs = [0.0f32; 48];
    for (i, v) in coeffs.iter_mut().enumerate() {
        *v = (i as f32 * 0.37).sin() * 0.3;
    }
    let dir = Vec3::new(0.3, -0.5, 0.81).normalized();
    c.bench_function("sh_eval_rgb_16coeff", |b| {
        b.iter(|| sh::eval_color(black_box(&coeffs), black_box(dir)))
    });
}

fn bench_projection(c: &mut Criterion) {
    let cam = Camera::look_at(
        Vec3::new(0.0, 0.0, -5.0),
        Vec3::ZERO,
        Vec3::new(0.0, 1.0, 0.0),
        60.0,
        640,
        360,
    );
    let g = Gaussian3D::new(
        Vec3::new(0.4, -0.2, 0.3),
        Vec3::new(0.2, 0.05, 0.01),
        gcc_math::Quat::from_axis_angle(Vec3::new(1.0, 2.0, 0.5), 0.8),
        0.7,
        [0.0; 48],
    );
    c.bench_function("ewa_projection_full", |b| {
        b.iter(|| project_gaussian(black_box(&g), 0, black_box(&cam), BoundingLaw::OmegaSigma))
    });
}

fn bench_exp(c: &mut Criterion) {
    let lut = PwlExp::new();
    c.bench_function("exp_lut_16seg", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for i in 0..64 {
                acc += lut.eval(black_box(-5.0 + i as f32 * 0.07));
            }
            acc
        })
    });
    c.bench_function("exp_exact_f32", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for i in 0..64 {
                acc += black_box(-5.0f32 + i as f32 * 0.07).exp();
            }
            acc
        })
    });
}

fn make_projected() -> gcc_core::ProjectedGaussian {
    let cov = SymMat2::new(25.0, 6.0, 12.0);
    gcc_core::ProjectedGaussian {
        id: 0,
        mean2d: Vec2::new(64.0, 64.0),
        cov2d: cov,
        conic: cov.inverse().unwrap(),
        depth: 2.0,
        opacity: 0.6,
        ln_opacity: 0.6f32.ln(),
        radius: 18.0,
        color: Vec3::new(1.0, 0.5, 0.2),
    }
}

fn bench_alpha_modes(c: &mut Criterion) {
    let p = make_projected();
    let exact = ExpMode::Exact;
    let lut = ExpMode::lut();
    c.bench_function("alpha_block_64px_exact", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for y in 56..64 {
                for x in 56..64 {
                    acc += gaussian_alpha(black_box(&p), x, y, &exact);
                }
            }
            acc
        })
    });
    c.bench_function("alpha_block_64px_lut", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for y in 56..64 {
                for x in 56..64 {
                    acc += gaussian_alpha(black_box(&p), x, y, &lut);
                }
            }
            acc
        })
    });
}

fn bench_boundary(c: &mut Criterion) {
    let p = make_projected();
    let test = EffectiveTest::new(p.mean2d, p.conic, p.opacity);

    let mut pixel_tracer = PixelTracer::new(128, 128);
    let mut out_px = Vec::new();
    c.bench_function("boundary_alg1_pixel_bfs", |b| {
        b.iter(|| pixel_tracer.trace(black_box(&test), &mut out_px))
    });

    let grid = BlockGrid::new(8, 128, 128);
    let mut block_tracer = BlockTracer::new(grid);
    let mut out_blocks = Vec::new();
    c.bench_function("boundary_alg1_block8_bfs", |b| {
        b.iter(|| {
            block_tracer.trace(
                black_box(&test),
                None,
                MaskMode::SkipAndBlock,
                &mut out_blocks,
            )
        })
    });

    // Baseline: exhaustive AABB scan of the 3σ footprint.
    let rect = PixelRect::from_circle(p.mean2d, 3.0 * 25.0f32.sqrt(), 128, 128);
    c.bench_function("boundary_naive_aabb_scan", |b| {
        b.iter(|| test.count_in_rect(black_box(rect)))
    });
}

criterion_group!(
    kernels,
    bench_sh,
    bench_projection,
    bench_exp,
    bench_alpha_modes,
    bench_boundary
);
criterion_main!(kernels);
