//! Criterion benches of the accelerator simulators end-to-end (functional
//! render + cycle/energy model) and of scene generation.

use criterion::{criterion_group, criterion_main, Criterion};
use gcc_scene::{SceneConfig, ScenePreset};
use gcc_sim::gcc::{simulate_gcc, GccSimConfig};
use gcc_sim::gscore::{simulate_gscore, GscoreConfig};

fn bench_simulators(c: &mut Criterion) {
    let scene = ScenePreset::Train.build(&SceneConfig::with_scale(0.1));
    let cam = scene.default_camera();
    let mut group = c.benchmark_group("simulate_frame");
    group.sample_size(10);
    group.bench_function("gscore", |b| {
        b.iter(|| simulate_gscore(&scene.gaussians, &cam, &GscoreConfig::default(), "Train"))
    });
    group.bench_function("gcc", |b| {
        b.iter(|| simulate_gcc(&scene.gaussians, &cam, &GccSimConfig::default(), "Train"))
    });
    group.finish();
}

fn bench_scene_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("scene_generation");
    group.sample_size(10);
    group.bench_function("lego_10pct", |b| {
        b.iter(|| ScenePreset::Lego.build(&SceneConfig::with_scale(0.1)))
    });
    group.bench_function("drjohnson_10pct", |b| {
        b.iter(|| ScenePreset::Drjohnson.build(&SceneConfig::with_scale(0.1)))
    });
    group.finish();
}

criterion_group!(simulators, bench_simulators, bench_scene_generation);
criterion_main!(simulators);
