//! Criterion benches of full-frame renders: the standard tile-wise
//! pipeline vs the GCC Gaussian-wise pipeline (with and without
//! cross-stage conditional processing), on a small Lego instance.

use criterion::{criterion_group, criterion_main, Criterion};
use gcc_render::gaussian_wise::{render_gaussian_wise, GaussianWiseConfig};
use gcc_render::standard::{render_standard, StandardConfig};
use gcc_scene::{SceneConfig, ScenePreset};

fn bench_renderers(c: &mut Criterion) {
    let scene = ScenePreset::Lego.build(&SceneConfig::with_scale(0.1));
    let cam = scene.default_camera();
    let mut group = c.benchmark_group("full_frame_render");
    group.sample_size(10);

    group.bench_function("standard_aabb", |b| {
        b.iter(|| render_standard(&scene.gaussians, &cam, &StandardConfig::default()))
    });
    group.bench_function("standard_obb_gscore", |b| {
        b.iter(|| render_standard(&scene.gaussians, &cam, &StandardConfig::gscore()))
    });
    group.bench_function("gaussian_wise_gcc", |b| {
        b.iter(|| render_gaussian_wise(&scene.gaussians, &cam, &GaussianWiseConfig::default()))
    });
    group.bench_function("gaussian_wise_gw_only", |b| {
        b.iter(|| render_gaussian_wise(&scene.gaussians, &cam, &GaussianWiseConfig::gw_only()))
    });
    let cmode = GaussianWiseConfig {
        subview: Some(64),
        ..GaussianWiseConfig::default()
    };
    group.bench_function("gaussian_wise_cmode64", |b| {
        b.iter(|| render_gaussian_wise(&scene.gaussians, &cam, &cmode))
    });
    group.finish();
}

criterion_group!(renderers, bench_renderers);
criterion_main!(renderers);
