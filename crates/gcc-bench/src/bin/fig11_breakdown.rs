//! Regenerates paper Fig. 11: the ablation/breakdown analysis on Palace,
//! Train and Drjohnson —
//!
//! (a) performance of Baseline (GSCore) → +Gaussian-wise (GW) → +cross-
//!     stage conditional (GW+CC = GCC), raw speedup over baseline;
//! (b) DRAM accesses by class (3D Gaussians / 2D Gaussians / KV pairs),
//!     normalized to baseline;
//! (c) rendering computations, normalized to baseline.
//!
//! Usage: `cargo run --release -p gcc-bench --bin fig11_breakdown`

use gcc_bench::{bench_scene, TablePrinter};
use gcc_scene::ScenePreset;
use gcc_sim::gcc::{simulate_gcc, GccSimConfig};
use gcc_sim::gscore::{simulate_gscore, GscoreConfig};
use gcc_sim::SimReport;

fn main() {
    let scenes = [
        ScenePreset::Palace,
        ScenePreset::Train,
        ScenePreset::Drjohnson,
    ];

    let mut perf = TablePrinter::new();
    perf.row(["Scene", "Baseline", "GW", "GW+CC(GCC)"]);
    let mut dram = TablePrinter::new();
    dram.row([
        "Scene",
        "Variant",
        "3D(MB)",
        "2D(MB)",
        "KV(MB)",
        "Other(MB)",
        "Norm",
    ]);
    let mut comp = TablePrinter::new();
    comp.row(["Scene", "Baseline", "GCC", "Reduction"]);

    for preset in scenes {
        let scene = bench_scene(preset);
        let cam = scene.default_camera();
        let (base, _) = simulate_gscore(
            &scene.gaussians,
            &cam,
            &GscoreConfig::default(),
            &scene.name,
        );
        let gw_cfg = GccSimConfig {
            cross_stage: false,
            ..GccSimConfig::default()
        };
        let (gw, _) = simulate_gcc(&scene.gaussians, &cam, &gw_cfg, &scene.name);
        let (cc, _) = simulate_gcc(
            &scene.gaussians,
            &cam,
            &GccSimConfig::default(),
            &scene.name,
        );

        perf.row([
            scene.name.clone(),
            "1.00x".to_string(),
            format!("{:.2}x", base.total_cycles / gw.total_cycles),
            format!("{:.2}x", base.total_cycles / cc.total_cycles),
        ]);

        let base_total = base.traffic.total();
        for (label, r) in [("Baseline", &base), ("GW", &gw), ("GW+CC", &cc)] {
            dram.row([
                scene.name.clone(),
                label.to_string(),
                format!("{:.1}", r.traffic.gauss3d_bytes / 1e6),
                format!("{:.1}", r.traffic.gauss2d_bytes / 1e6),
                format!("{:.1}", r.traffic.kv_bytes / 1e6),
                format!("{:.1}", r.traffic.other_bytes / 1e6),
                format!("{:.2}", r.traffic.total() / base_total),
            ]);
        }

        comp.row([
            scene.name.clone(),
            fmt_ops(&base),
            fmt_ops(&cc),
            format!("{:.2}x", base.render_ops / cc.render_ops),
        ]);
    }

    println!("=== Figure 11(a): performance vs baseline ===\n");
    perf.print();
    println!("\n=== Figure 11(b): DRAM access breakdown ===\n");
    dram.print();
    println!("\n=== Figure 11(c): rendering computations ===\n");
    comp.print();
    println!("\n(paper: GW and CC each contribute; GCC cuts DRAM >50% and rendering ops)");
}

fn fmt_ops(r: &SimReport) -> String {
    format!("{:.1}M", r.render_ops / 1e6)
}
