//! Regenerates paper Fig. 2: (a) Gaussian counts per processing phase
//! (Total / In-Frustum / Rendered) with the unused-percentage labels, and
//! (b) average per-Gaussian loadings during GSCore-style tile-wise
//! rendering.
//!
//! Usage: `cargo run --release -p gcc-bench --bin fig02_gaussian_stats`
//! (`GCC_SCENE_SCALE` overrides the scene scale).

use gcc_bench::{bench_scene, fmt_count, TablePrinter};
use gcc_render::standard::{render_standard, StandardConfig};
use gcc_scene::ScenePreset;

fn main() {
    let scenes = [
        ScenePreset::Train,
        ScenePreset::Truck,
        ScenePreset::Playroom,
        ScenePreset::Drjohnson,
    ];

    println!("=== Figure 2(a): Gaussians per processing phase ===");
    println!("(paper: 64.0%-82.8% of preprocessed Gaussians unused)\n");
    let mut ta = TablePrinter::new();
    ta.row([
        "Scene",
        "Total",
        "InFrustum",
        "Rendered",
        "Unused%",
        "Paper%",
    ]);
    let paper_unused = [67.1, 64.0, 81.4, 82.8];

    let mut tb = TablePrinter::new();
    tb.row(["Scene", "TileLoads", "UniqueLoaded", "AvgLoads", "Paper"]);
    let paper_loads = [3.94, 3.17, 5.63, 6.45];

    for (i, preset) in scenes.iter().enumerate() {
        let scene = bench_scene(*preset);
        let cam = scene.default_camera();
        let out = render_standard(&scene.gaussians, &cam, &StandardConfig::gscore());
        let s = &out.stats;
        ta.row([
            scene.name.clone(),
            fmt_count(s.total_gaussians),
            fmt_count(s.projected),
            fmt_count(s.rendered),
            format!("{:.1}%", 100.0 * s.unused_fraction()),
            format!("{:.1}%", paper_unused[i]),
        ]);
        tb.row([
            scene.name.clone(),
            fmt_count(s.tile_loads),
            fmt_count(s.unique_loaded),
            format!("{:.2}", s.avg_loads_per_gaussian()),
            format!("{:.2}", paper_loads[i]),
        ]);
    }
    ta.print();
    println!("\n=== Figure 2(b): average per-Gaussian loadings in rendering ===\n");
    tb.print();
}
