//! Regenerates paper Table 4: GCC's per-module area and power breakdown at
//! 28 nm / 1 GHz, with the GSCore totals for comparison.
//!
//! Usage: `cargo run --release -p gcc-bench --bin table4_area_power`

use gcc_bench::TablePrinter;
use gcc_sim::area::{gcc_buffers, gcc_compute_units, gcc_summary, gscore_summary};

fn main() {
    println!("=== Table 4: GCC area & power breakdown (28nm, 1 GHz) ===\n");
    let mut t = TablePrinter::new();
    t.row(["Component", "Area(mm2)", "Power(mW)", "Configuration"]);
    let units = gcc_compute_units();
    for c in &units {
        t.row([
            c.name.to_string(),
            format!("{:.3}", c.area_mm2),
            format!("{:.0}", c.power_mw),
            c.configuration.to_string(),
        ]);
    }
    let cu_area: f64 = units.iter().map(|c| c.area_mm2).sum();
    let cu_pw: f64 = units.iter().map(|c| c.power_mw).sum();
    t.row([
        "Compute total".to_string(),
        format!("{cu_area:.3}"),
        format!("{cu_pw:.0}"),
        String::new(),
    ]);
    let bufs = gcc_buffers();
    for c in &bufs {
        t.row([
            c.name.to_string(),
            format!("{:.3}", c.area_mm2),
            format!("{:.0}", c.power_mw),
            c.configuration.to_string(),
        ]);
    }
    let bu_area: f64 = bufs.iter().map(|c| c.area_mm2).sum();
    let bu_pw: f64 = bufs.iter().map(|c| c.power_mw).sum();
    t.row([
        "Buffer total".to_string(),
        format!("{bu_area:.3}"),
        format!("{bu_pw:.0}"),
        "190 KB".to_string(),
    ]);
    let g = gcc_summary();
    t.row([
        "GCC total".to_string(),
        format!("{:.3}", g.area_mm2),
        format!("{:.0}", g.power_mw),
        String::new(),
    ]);
    let gs = gscore_summary();
    t.row([
        "GSCore total".to_string(),
        format!("{:.2}", gs.area_mm2),
        format!("{:.0}", gs.power_mw),
        "272 KB".to_string(),
    ]);
    t.print();
    println!(
        "\nGCC occupies {:.0}% less area than GSCore at slightly lower power.",
        100.0 * (1.0 - g.area_mm2 / gs.area_mm2)
    );
}
