//! Regenerates paper Table 2: rendering-quality parity (PSNR / perceptual
//! distance) across the GPU reference, GSCore and GCC on all six scenes.
//!
//! Ground truth substitution (DESIGN.md §1): held-out photographs are not
//! available, so a pseudo ground truth anchors the GPU row at the paper's
//! PSNR; GSCore and GCC are then measured against the same pseudo-GT. The
//! claim under test — GCC's ω-σ law, LUT-EXP and Gaussian-wise order cost
//! <0.1 dB versus the GPU pipeline — is computed honestly from the
//! renders.
//!
//! Usage: `cargo run --release -p gcc-bench --bin table2_quality`

use gcc_bench::{bench_scene, TablePrinter};
use gcc_render::gaussian_wise::{render_gaussian_wise, GaussianWiseConfig};
use gcc_render::quality::{perceptual_distance, pseudo_ground_truth, psnr, ssim};
use gcc_render::standard::{render_reference, render_standard, StandardConfig};
use gcc_scene::ALL_PRESETS;

fn main() {
    // Paper Table 2 "GPU" PSNR anchors per scene.
    let anchors = [38.35, 34.90, 24.66, 26.82, 36.18, 35.18];

    println!("=== Table 2: rendering quality (PSNR dB / perceptual distance / SSIM) ===\n");
    let mut t = TablePrinter::new();
    t.row(["Scene", "Method", "PSNR", "Perc.", "SSIM", "dPSNR-vs-GPU"]);
    for (i, preset) in ALL_PRESETS.iter().enumerate() {
        let scene = bench_scene(*preset);
        let cam = scene.default_camera();

        let gpu = render_reference(&scene.gaussians, &cam);
        let gscore = render_standard(&scene.gaussians, &cam, &StandardConfig::gscore());
        let gcc_cfg = GaussianWiseConfig {
            subview: Some(64),
            ..GaussianWiseConfig::gcc_hardware()
        };
        let gcc = render_gaussian_wise(&scene.gaussians, &cam, &gcc_cfg);

        let gt = pseudo_ground_truth(&gpu.image, anchors[i], 0x6CC + i as u64);
        let p_gpu = psnr(&gpu.image, &gt);
        for (name, img) in [
            ("GPU", &gpu.image),
            ("GSCore", &gscore.image),
            ("GCC", &gcc.image),
        ] {
            let p = psnr(img, &gt);
            t.row([
                scene.name.clone(),
                name.to_string(),
                format!("{:.2}", p),
                format!("{:.3}", perceptual_distance(img, &gt)),
                format!("{:.3}", ssim(img, &gt)),
                format!("{:+.3}", p - p_gpu),
            ]);
        }
    }
    t.print();
    println!("\n(paper: PSNR deviations below 0.1 dB, identical LPIPS)");
}
