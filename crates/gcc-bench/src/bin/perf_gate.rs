//! `perf_gate` — the CI perf-regression gate.
//!
//! Two independent checks, either or both per invocation:
//!
//! * **Frame gate** (`--baseline` + `--current`): compares a freshly
//!   produced `BENCH_frame.json` against the committed
//!   `ci/bench_baseline.json` cell-by-cell and fails when any
//!   `(scene, scale, engine, parallelism)` cell slowed down beyond the
//!   tolerance, or when baseline coverage is missing from the current
//!   run.
//! * **Serve gate** (`--serve`): checks a `bench_serve/v3` record —
//!   committed or freshly measured — against a throughput floor: the
//!   batched/naive `speedup_vs_naive` must be at least `--serve-floor`
//!   (default 2.0, the acceptance threshold) and the record's own
//!   serve-vs-direct parity pass must have succeeded. A record produced
//!   with `bench_serve --chaos` carries a `"chaos"` object, and the gate
//!   additionally requires its fault storm to have resolved cleanly:
//!   `all_resolved` and zero lost workers — the fault-free floor and the
//!   resilience contract are enforced by the same invocation. Likewise a
//!   record produced with `bench_serve --lod` carries a `"lod"` object,
//!   and the gate requires the deadline-degradation contract: the
//!   quality-ladder run missed zero deadlines where the exact run missed
//!   at least one, every frame was delivered, and every rung met its
//!   documented PSNR/SSIM floor.
//!
//! The comparison logic itself lives in `gcc_bench::perf_gate`, where
//! unit tests pin that an inflated timing record and a collapsed serve
//! speedup both fail the gate.
//!
//! ```text
//! cargo run --release -p gcc-bench --bin perf_gate -- \
//!     --baseline ci/bench_baseline.json --current BENCH_gate.json \
//!     [--tolerance 0.25] [--serve BENCH_serve.json] [--serve-floor 2.0]
//! ```
//!
//! Refreshing the baseline (documented in README "Perf gate"): rerun
//! `bench_frame --smoke` on the reference machine class and copy the
//! record over `ci/bench_baseline.json` in the same PR that explains the
//! intentional change.

use gcc_bench::perf_gate::{check_serve_record, compare};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_path = None;
    let mut current_path = None;
    let mut serve_path = None;
    let mut tolerance = 0.25f64;
    let mut serve_floor = 2.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => {
                baseline_path = Some(it.next().expect("--baseline needs a path").clone())
            }
            "--current" => current_path = Some(it.next().expect("--current needs a path").clone()),
            "--serve" => serve_path = Some(it.next().expect("--serve needs a path").clone()),
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--tolerance needs a number");
            }
            "--serve-floor" => {
                serve_floor = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--serve-floor needs a number");
            }
            other => {
                eprintln!(
                    "unknown flag {other} (expected --baseline, --current, --tolerance, \
                     --serve, --serve-floor)"
                );
                std::process::exit(2);
            }
        }
    }
    let frame_gate = baseline_path.is_some() || current_path.is_some();
    if !frame_gate && serve_path.is_none() {
        eprintln!("perf_gate: nothing to do (pass --baseline/--current and/or --serve)");
        std::process::exit(2);
    }

    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("perf_gate: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };

    let mut failed = false;
    if frame_gate {
        let (Some(baseline_path), Some(current_path)) = (baseline_path, current_path) else {
            eprintln!("perf_gate: the frame gate needs both --baseline and --current");
            std::process::exit(2);
        };
        let report = match compare(&read(&baseline_path), &read(&current_path), tolerance) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("perf_gate: {e}");
                std::process::exit(2);
            }
        };
        print!("{}", report.render());
        if !report.passed() {
            eprintln!(
                "perf_gate: regression beyond +{:.0}% against {baseline_path} — \
                 if intentional, refresh the baseline (see README \"Perf gate\")",
                tolerance * 100.0
            );
            failed = true;
        }
    }
    if let Some(serve_path) = serve_path {
        let report = match check_serve_record(&read(&serve_path), serve_floor) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("perf_gate: serve record {serve_path}: {e}");
                std::process::exit(2);
            }
        };
        print!("{}", report.render());
        if !report.passed() {
            eprintln!(
                "perf_gate: serve throughput floor ({serve_floor:.2}x) not held by \
                 {serve_path} — if intentional, refresh the record (see README \
                 \"Serving layer\")"
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
