//! `perf_gate` — the CI perf-regression gate.
//!
//! Compares a freshly produced `BENCH_frame.json` against the committed
//! `ci/bench_baseline.json` cell-by-cell and exits non-zero when any
//! `(scene, scale, engine, parallelism)` cell slowed down beyond the
//! tolerance, or when baseline coverage is missing from the current run.
//! The comparison logic itself lives in `gcc_bench::perf_gate`, where
//! unit tests pin that an inflated timing record fails the gate.
//!
//! ```text
//! cargo run --release -p gcc-bench --bin perf_gate -- \
//!     --baseline ci/bench_baseline.json --current BENCH_frame.json \
//!     [--tolerance 0.25]
//! ```
//!
//! Refreshing the baseline (documented in README "Perf gate"): rerun
//! `bench_frame --smoke` on the reference machine class and copy the
//! record over `ci/bench_baseline.json` in the same PR that explains the
//! intentional change.

use gcc_bench::perf_gate::compare;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_path = None;
    let mut current_path = None;
    let mut tolerance = 0.25f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => {
                baseline_path = Some(it.next().expect("--baseline needs a path").clone())
            }
            "--current" => current_path = Some(it.next().expect("--current needs a path").clone()),
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--tolerance needs a number");
            }
            other => {
                eprintln!("unknown flag {other} (expected --baseline, --current, --tolerance)");
                std::process::exit(2);
            }
        }
    }
    let baseline_path = baseline_path.expect("--baseline is required");
    let current_path = current_path.expect("--current is required");

    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("perf_gate: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let report = match compare(&read(&baseline_path), &read(&current_path), tolerance) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perf_gate: {e}");
            std::process::exit(2);
        }
    };
    print!("{}", report.render());
    if !report.passed() {
        eprintln!(
            "perf_gate: regression beyond +{:.0}% against {baseline_path} — \
             if intentional, refresh the baseline (see README \"Perf gate\")",
            tolerance * 100.0
        );
        std::process::exit(1);
    }
}
