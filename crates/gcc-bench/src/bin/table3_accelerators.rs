//! Regenerates paper Table 3: cross-accelerator comparison on the Lego
//! scene (model, PSNR, process, area, SRAM, frequency, power, throughput,
//! area-normalized throughput).
//!
//! NeRF-accelerator and GPU rows are literature constants (as in the
//! paper); the GSCore and GCC rows come from this repository's simulators.
//! FPS is reported at repro scale and linearly extrapolated to the paper's
//! full-scale Lego workload (~9.7× more Gaussians and pixels); the
//! GCC-vs-GSCore throughput *ratio* is the reproduced quantity.
//!
//! Usage: `cargo run --release -p gcc-bench --bin table3_accelerators`

use gcc_bench::{bench_scene, TablePrinter};
use gcc_scene::ScenePreset;
use gcc_sim::area::{gcc_summary, gscore_summary};
use gcc_sim::gcc::{simulate_gcc, GccSimConfig};
use gcc_sim::gscore::{simulate_gscore, GscoreConfig};
use gcc_sim::scaling::{scale_stats, WorkloadScale};

/// Full-scale Lego (~331 K Gaussians at 800×800) over our repro scene.
const FULL_SCALE_FACTOR: f64 = 9.7;

fn main() {
    let scene = bench_scene(ScenePreset::Lego);
    let cam = scene.default_camera();
    let gs_cfg = GscoreConfig::default();
    let gc_cfg = GccSimConfig::default();
    let (gs, gs_out) = simulate_gscore(&scene.gaussians, &cam, &gs_cfg, &scene.name);
    let (gc, gc_out) = simulate_gcc(&scene.gaussians, &cam, &gc_cfg, &scene.name);

    // Extrapolate the measured workload statistics to the full-scale Lego
    // and rerun the cycle models on the scaled workload.
    let scale = WorkloadScale::uniform(FULL_SCALE_FACTOR);
    let pixels_full = f64::from(cam.width) * f64::from(cam.height) * FULL_SCALE_FACTOR;
    let gs_full = gcc_sim::gscore::report_from_stats(
        &scale_stats(&gs_out.stats, scale),
        &gs_cfg,
        &scene.name,
    );
    let gc_full = gcc_sim::gcc::report_from_stats(
        &scale_stats(&gc_out.stats, scale),
        pixels_full,
        &gc_cfg,
        &scene.name,
    );
    let gs_fps_full = gs_full.fps();
    let gc_fps_full = gc_full.fps();
    let gs_sum = gscore_summary();
    let gc_sum = gcc_summary();

    println!("=== Table 3: neural rendering accelerator comparison (Lego) ===\n");
    let mut t = TablePrinter::new();
    t.row([
        "Design",
        "Model",
        "Process",
        "Area(mm2)",
        "SRAM(KB)",
        "Freq",
        "Power(W)",
        "FPS*",
        "FPS/mm2",
    ]);
    // Literature rows, as printed in the paper.
    t.row([
        "MetaVRain (ISSCC'23)",
        "NeRF",
        "28nm",
        "20.25",
        "2015",
        "250MHz",
        "0.89",
        "110",
        "5.43",
    ]);
    t.row([
        "Fusion-3D (MICRO'24)",
        "NeRF",
        "28nm",
        "8.7",
        "1099",
        "600MHz",
        "6.0",
        "36",
        "4.13",
    ]);
    t.row([
        "NVIDIA A6000",
        "3DGS",
        "8nm",
        "628",
        "-",
        "1040MHz",
        "300",
        "300",
        "0.48",
    ]);
    t.row([
        "Jetson AGX Xavier",
        "3DGS",
        "12nm",
        "350",
        "-",
        "854MHz",
        "30",
        "20",
        "0.05",
    ]);
    t.row([
        "GSCore (ASPLOS'24, sim)".to_string(),
        "3DGS".to_string(),
        "28nm".to_string(),
        format!("{:.2}", gs_sum.area_mm2),
        format!("{:.0}", gs_sum.sram_kb),
        "1GHz".to_string(),
        format!("{:.2}", gs_sum.power_mw / 1e3),
        format!("{:.0}", gs_fps_full),
        format!("{:.1}", gs_fps_full / gs_sum.area_mm2),
    ]);
    t.row([
        "GCC (this work, sim)".to_string(),
        "3DGS".to_string(),
        "28nm".to_string(),
        format!("{:.2}", gc_sum.area_mm2),
        format!("{:.0}", gc_sum.sram_kb),
        "1GHz".to_string(),
        format!("{:.2}", gc_sum.power_mw / 1e3),
        format!("{:.0}", gc_fps_full),
        format!("{:.1}", gc_fps_full / gc_sum.area_mm2),
    ]);
    t.print();

    println!(
        "\nGCC/GSCore throughput ratio: {:.2}x (paper: 667/190 = 3.51x)",
        gc_fps_full / gs_fps_full
    );
    println!(
        "GCC/GSCore area-normalized ratio: {:.2}x (paper: 246.0/48.1 = 5.11x)",
        (gc_fps_full / gc_sum.area_mm2) / (gs_fps_full / gs_sum.area_mm2)
    );
    println!(
        "\n*GSCore/GCC FPS extrapolated to the paper's full-scale Lego ({}x repro workload);",
        FULL_SCALE_FACTOR
    );
    println!(
        " measured at repro scale: GSCore {:.0} FPS, GCC {:.0} FPS.",
        gs.fps(),
        gc.fps()
    );
}
