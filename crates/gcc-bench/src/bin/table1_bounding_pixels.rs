//! Regenerates paper Table 1: average number of rendered (alpha-evaluated)
//! pixels per frame under AABB and OBB footprints versus the pixels that
//! actually receive a blend — the motivation for alpha-based boundary
//! identification.
//!
//! Paper shape: AABB ≈ 3× OBB, OBB ≈ 5–10× Rendered.
//!
//! Usage: `cargo run --release -p gcc-bench --bin table1_bounding_pixels`

use gcc_bench::{bench_scene, fmt_count, TablePrinter};
use gcc_render::standard::{render_standard, StandardConfig};
use gcc_scene::ScenePreset;

fn main() {
    let scenes = [
        ScenePreset::Train,
        ScenePreset::Truck,
        ScenePreset::Playroom,
        ScenePreset::Drjohnson,
    ];

    println!("=== Table 1: rendered pixels per frame by bounding method ===\n");
    let mut t = TablePrinter::new();
    t.row([
        "Scene",
        "AABB(px)",
        "OBB(px)",
        "Blended(px)",
        "AABB/OBB",
        "OBB/Blend",
    ]);
    for preset in scenes {
        let scene = bench_scene(preset);
        let cam = scene.default_camera();
        let out = render_standard(&scene.gaussians, &cam, &StandardConfig::gscore());
        let s = &out.stats;
        t.row([
            scene.name.clone(),
            fmt_count(s.pixels_tested_aabb),
            fmt_count(s.pixels_tested_obb),
            fmt_count(s.pixels_blended),
            format!(
                "{:.2}x",
                s.pixels_tested_aabb as f64 / s.pixels_tested_obb.max(1) as f64
            ),
            format!(
                "{:.2}x",
                s.pixels_tested_obb as f64 / s.pixels_blended.max(1) as f64
            ),
        ]);
    }
    t.print();
    println!("\n(paper, full scale: AABB 1161-1697M, OBB 333-460M, Rendered 31-73M)");
}
