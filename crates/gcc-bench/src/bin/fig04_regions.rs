//! Regenerates paper Fig. 4: the pixel regions covered by AABB and OBB
//! bounding under the 3σ rule versus the effective (α ≥ 1/255) region, for
//! an anisotropic Gaussian at opacity ω = 1 and ω = 0.01.
//!
//! Paper shape: at ω = 1 the effective ellipse slightly exceeds 3σ; at
//! ω = 0.01 it collapses to a small core while AABB/OBB stay unchanged.
//!
//! Usage: `cargo run --release -p gcc-bench --bin fig04_regions`

use gcc_bench::TablePrinter;
use gcc_core::bounds::{bounding_radius, BoundingLaw, EffectiveTest, Obb, PixelRect};
use gcc_math::{SymMat2, Vec2};

const W: u32 = 96;
const H: u32 = 48;

fn main() {
    // A diagonal anisotropic splat, as drawn in the paper's figure.
    let cov = SymMat2::new(60.0, 35.0, 32.0);
    let conic = cov.inverse().expect("positive definite");
    let center = Vec2::new(W as f32 / 2.0, H as f32 / 2.0);
    let (l1, _) = cov.eigenvalues();

    println!("=== Figure 4: bounding regions vs effective region ===\n");
    let mut t = TablePrinter::new();
    t.row(["Opacity", "AABB(px)", "OBB(px)", "Effective(px)", "OBB/Eff"]);
    for &opacity in &[1.0f32, 0.01] {
        let r = bounding_radius(BoundingLaw::ThreeSigma, l1, opacity);
        let aabb = PixelRect::from_circle(center, r, W, H);
        let obb = Obb::from_cov(center, cov, BoundingLaw::ThreeSigma, opacity).expect("valid obb");
        let eff = EffectiveTest::new(center, conic, opacity);
        let full = PixelRect {
            x0: 0,
            y0: 0,
            x1: W as i32,
            y1: H as i32,
        };
        let aabb_px = aabb.area();
        let obb_px = obb.pixel_count(W, H);
        let eff_px = eff.count_in_rect(full);
        t.row([
            format!("{opacity}"),
            format!("{aabb_px}"),
            format!("{obb_px}"),
            format!("{eff_px}"),
            format!("{:.2}x", obb_px as f64 / eff_px.max(1) as f64),
        ]);
        println!("omega = {opacity}:");
        render_ascii(&aabb, &obb, &eff);
        println!();
    }
    t.print();
    println!("\nLegend: '.' AABB only, 'o' OBB, '#' effective (alpha >= 1/255)");
}

fn render_ascii(aabb: &PixelRect, obb: &Obb, eff: &EffectiveTest) {
    for y in 0..H as i32 {
        let mut line = String::with_capacity(W as usize);
        for x in 0..W as i32 {
            let in_aabb = x >= aabb.x0 && x < aabb.x1 && y >= aabb.y0 && y < aabb.y1;
            let ch = if eff.passes(x, y) {
                '#'
            } else if obb.contains(x, y) {
                'o'
            } else if in_aabb {
                '.'
            } else {
                ' '
            };
            line.push(ch);
        }
        println!("  {line}");
    }
}
