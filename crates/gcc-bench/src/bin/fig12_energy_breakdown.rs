//! Regenerates paper Fig. 12: per-frame energy consumption breakdown
//! (off-chip memory / on-chip memory / computation) for GSCore and GCC on
//! the six scenes.
//!
//! Paper shape: DRAM dominates both designs; GCC cuts DRAM traffic by
//! >50%, trading a little more SRAM activity (Image Buffer) for it.
//!
//! Usage: `cargo run --release -p gcc-bench --bin fig12_energy_breakdown`

use gcc_bench::{bench_scene, TablePrinter};
use gcc_scene::ALL_PRESETS;
use gcc_sim::gcc::{simulate_gcc, GccSimConfig};
use gcc_sim::gscore::{simulate_gscore, GscoreConfig};

fn main() {
    println!("=== Figure 12: energy breakdown per frame (mJ) ===\n");
    let mut t = TablePrinter::new();
    t.row([
        "Scene", "Accel", "DRAM", "SRAM", "Compute", "Total", "DRAM%",
    ]);
    for preset in ALL_PRESETS {
        let scene = bench_scene(preset);
        let cam = scene.default_camera();
        let (gs, _) = simulate_gscore(
            &scene.gaussians,
            &cam,
            &GscoreConfig::default(),
            &scene.name,
        );
        let (gc, _) = simulate_gcc(
            &scene.gaussians,
            &cam,
            &GccSimConfig::default(),
            &scene.name,
        );
        for r in [&gs, &gc] {
            let e = &r.energy;
            t.row([
                scene.name.clone(),
                r.accelerator.clone(),
                format!("{:.3}", e.dram_pj * 1e-9),
                format!("{:.3}", e.sram_pj * 1e-9),
                format!("{:.3}", e.compute_pj * 1e-9),
                format!("{:.3}", e.total_mj()),
                format!("{:.0}%", 100.0 * e.dram_pj / e.total_pj()),
            ]);
        }
    }
    t.print();
    println!("\n(paper: DRAM dominates; GCC cuts DRAM traffic by >50%)");
}
