//! Regenerates paper Fig. 6: the Gaussian-loading overhead of Compatibility
//! Mode as the sub-view size shrinks (1024 → 16): rendering invocations
//! (per-sub-view duplicates counted) versus unique rendered Gaussians.
//!
//! Paper shape: overhead is marginal for sub-views ≥ 128×128 and grows
//! steeply below. At the repro's half resolution the equivalent operating
//! point is 64×64; the sweep prints the full-scale-equivalent size too.
//!
//! Usage: `cargo run --release -p gcc-bench --bin fig06_subview_sweep`

use gcc_bench::{bench_scene, fmt_count, TablePrinter};
use gcc_render::gaussian_wise::{render_gaussian_wise, GaussianWiseConfig};
use gcc_scene::ScenePreset;

fn main() {
    println!("=== Figure 6: sub-view size vs Gaussian-loading overhead ===\n");
    for preset in [ScenePreset::Lego, ScenePreset::Train] {
        let scene = bench_scene(preset);
        let cam = scene.default_camera();
        println!("--- {} ({}x{}) ---", scene.name, cam.width, cam.height);
        let mut t = TablePrinter::new();
        t.row([
            "SubView",
            "FullScaleEq",
            "Invocations",
            "RenderedUnique",
            "Overhead",
            "GeoLoads",
        ]);
        for &sub in &[512u32, 256, 128, 64, 32, 16, 8] {
            let cfg = GaussianWiseConfig {
                subview: (sub < cam.width.max(cam.height)).then_some(sub),
                ..GaussianWiseConfig::default()
            };
            let out = render_gaussian_wise(&scene.gaussians, &cam, &cfg);
            let s = &out.stats;
            t.row([
                format!("{sub}"),
                format!("{}", sub * 2),
                fmt_count(s.render_invocations),
                fmt_count(s.rendered),
                format!(
                    "{:.2}x",
                    s.render_invocations as f64 / s.rendered.max(1) as f64
                ),
                fmt_count(s.geometry_loads),
            ]);
        }
        t.print();
        println!();
    }
    println!("(paper: invocations stay near unique count for sub-views >= 128 full-scale)");
}
