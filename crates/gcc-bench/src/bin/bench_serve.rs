//! `bench_serve` — the machine-readable serving-layer harness behind
//! `BENCH_serve.json` (schema `bench_serve/v3`).
//!
//! Drives `gcc_serve::RenderService` with a deterministic synthetic
//! *streaming* workload over the session API: a mixed scene set written
//! to on-disk binary/JSON files (loads go through `gcc_scene::io`, like
//! production residency misses would), skewed scene popularity drawn
//! from the in-tree PRNG, and two closed-loop client populations running
//! concurrently:
//!
//! * **Bulk stream clients** — each opens sessions and replays
//!   `Bulk`-priority [`gcc_serve::StreamSpec`] streams (trajectory
//!   sweeps, orbit loops, explicit view lists; 4–8 frames each, window
//!   4) with heterogeneous per-stream schedules and occasional
//!   resolution overrides, consuming every frame in order.
//! * **Interactive clients** — each submits deadline-carrying
//!   single-frame interactive streams (the `submit` shim shape) with
//!   mixed views, schedules, resolutions and ROIs.
//!
//! The same workload replays against two configurations:
//!
//! * `batched_lru` — cache budget fits the whole scene set, requests
//!   coalesce into `(scene, schedule, resolution, priority)` batches;
//! * `naive_evict` — zero cache budget and `max_batch = 1`, i.e. the
//!   load-render-evict-per-request regime a serverless renderer would be
//!   stuck in.
//!
//! The record includes throughput, per-priority p50/p95 latency and
//! deadline-miss counts, stream lifecycle counters, cache hit rate, the
//! per-schedule breakdown and the batched/naive speedup. In full
//! (non-smoke) mode the binary *enforces* `speedup_vs_naive ≥ 2` **and**
//! the latency-class contract (batched Interactive p95 ≤ Bulk p95 under
//! the mixed load), and in every mode it checks a sample of served
//! frames — streamed and submitted, including posed, ROI'd and
//! resolution-overridden ones — bit-identical against direct
//! `Renderer::render_job` output and re-parses the JSON it wrote — exit
//! 0 means "valid record, parity held".
//!
//! With `--chaos` the harness first replays the workload through a
//! *fault-injected* copy of the service — a seeded
//! [`gcc_serve::FaultPlan`] storm of transient/fatal load failures, load
//! panics, slow loads and render panics — consuming every stream
//! tolerantly (typed errors allowed, stranded streams are the failure),
//! then disarms the plan and replays the workload strictly on the same
//! service to measure **recovery throughput**. The record gains a
//! `"chaos"` object (injected fault counts, respawns, lost workers,
//! quarantines, recovery throughput, `all_resolved`) that `perf_gate`
//! refuses unless every request resolved and the pool recovered to full
//! width. The measured fault-free configurations run on separate clean
//! services, so the committed speedup floor is unaffected.
//!
//! With `--wire` the harness additionally exercises the TCP deployment
//! shape from `gcc-wire`: it spawns two real `gcc-served` backend
//! *processes* plus a `gcc-shard` consistent-hash proxy over loopback
//! (binaries located next to the bench executable), drives seeded
//! clients through the proxy, checks every delivered frame bit-identical
//! against direct in-process renders, requires every client request to
//! resolve (typed rejections count), then drains the fleet via the wire
//! `Shutdown` request and checks the child exit codes. The record gains
//! a `"wire"` object that `perf_gate` refuses unless both held.
//!
//! With `--lod` the harness exercises the deadline-aware quality ladder
//! (`gcc-lod` + `ServeConfig::lod`): it calibrates a per-frame deadline
//! that full-quality rendering cannot meet but the ladder's cheap rungs
//! can, replays the same deadline-carrying orbit with the ladder on
//! (expecting **zero** misses) and off (expecting misses), and measures
//! every rung's PSNR/SSIM against full renders of the same views. The
//! record gains a `"lod"` object that `perf_gate` refuses unless the
//! miss contract held, every frame resolved, and every rung met its
//! documented quality floor.
//!
//! ```text
//! cargo run --release -p gcc-bench --bin bench_serve            # full
//! cargo run --release -p gcc-bench --bin bench_serve -- --smoke # CI
//! cargo run --release -p gcc-bench --bin bench_serve -- --smoke --chaos
//! cargo run --release -p gcc-bench --bin bench_serve -- --smoke --wire
//! cargo run --release -p gcc-bench --bin bench_serve -- --smoke --lod
//! ```
//!
//! Flags: `--smoke` (tiny scenes, short workload — CI), `--chaos`
//! (fault-injected storm + recovery phase, recorded under `"chaos"`),
//! `--wire` (multi-process shard deployment over loopback, recorded
//! under `"wire"`; needs the `gcc-served`/`gcc-shard` binaries built),
//! `--lod` (deadline-aware quality ladder on/off replay + per-rung
//! quality, recorded under `"lod"`), `--clients N` (bulk stream clients;
//! `max(1, N/2)` interactive clients ride along), `--requests N`
//! (streams per bulk client; interactive clients submit `3·N` frames
//! each), `--out PATH` (default `BENCH_serve.json` at the repository
//! root).

use std::io::BufRead;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gcc_bench::TablePrinter;
use gcc_lod::{attach_hierarchy, QualityRung};
use gcc_math::Vec3;
use gcc_render::pipeline::FrameScratch;
use gcc_render::quality::{psnr, ssim};
use gcc_render::upscale::upscale_bilinear;
use gcc_render::{RenderJob, RenderOptions, Roi, Schedule};
use gcc_scene::io::RetryPolicy;
use gcc_scene::rng::StdRng;
use gcc_scene::{io, Scene, SceneConfig, ScenePreset, ViewSpec};
use gcc_serve::{
    ChaosRenderer, FaultPlan, LodPolicy, Priority, RenderRequest, RenderService, SceneSource,
    ScheduleRenderers, ServeConfig, ServeError, ServeStats, StreamConfig, StreamSpec,
};
use gcc_wire::{WireClient, WireError, WireRejection};

/// One scene of the benchmark set.
struct BenchScene {
    id: &'static str,
    preset: ScenePreset,
    scale: f32,
    /// Write the scene as JSON (slow loads) instead of binary.
    json: bool,
    /// Relative popularity in the skewed workload.
    weight: f32,
}

fn scene_set(smoke: bool) -> Vec<BenchScene> {
    if smoke {
        vec![
            BenchScene {
                id: "lego",
                preset: ScenePreset::Lego,
                scale: 0.05,
                json: false,
                weight: 0.5,
            },
            BenchScene {
                id: "palace",
                preset: ScenePreset::Palace,
                scale: 0.05,
                json: true,
                weight: 0.3,
            },
            BenchScene {
                id: "train",
                preset: ScenePreset::Train,
                scale: 0.02,
                json: false,
                weight: 0.2,
            },
        ]
    } else {
        vec![
            BenchScene {
                id: "train",
                preset: ScenePreset::Train,
                scale: 0.10,
                json: true,
                weight: 0.40,
            },
            BenchScene {
                id: "lego",
                preset: ScenePreset::Lego,
                scale: 0.50,
                json: true,
                weight: 0.25,
            },
            BenchScene {
                id: "palace",
                preset: ScenePreset::Palace,
                scale: 0.50,
                json: false,
                weight: 0.15,
            },
            BenchScene {
                id: "truck",
                preset: ScenePreset::Truck,
                scale: 0.05,
                json: false,
                weight: 0.12,
            },
            BenchScene {
                id: "drjohnson",
                preset: ScenePreset::Drjohnson,
                scale: 0.02,
                json: false,
                weight: 0.08,
            },
        ]
    }
}

/// Registry entries plus direct copies of the scenes behind them.
type RegistryAndScenes = (Vec<(String, SceneSource)>, Vec<(String, Arc<Scene>)>);

/// Builds the scene files and the service registry; returns the registry
/// plus each scene loaded directly (for parity checks and size totals).
fn build_registry(scenes: &[BenchScene], dir: &PathBuf) -> RegistryAndScenes {
    std::fs::create_dir_all(dir).expect("create scene dir");
    let mut registry = Vec::new();
    let mut loaded = Vec::new();
    for s in scenes {
        let scene = s.preset.build(&SceneConfig::with_scale(s.scale));
        let path = dir.join(format!("{}.{}", s.id, if s.json { "json" } else { "bin" }));
        if s.json {
            io::write_json_file(&scene, &path).expect("write scene json");
        } else {
            io::write_binary_file(&scene, &path).expect("write scene binary");
        }
        registry.push((s.id.to_string(), SceneSource::File(path)));
        loaded.push((s.id.to_string(), Arc::new(scene)));
    }
    (registry, loaded)
}

/// Schedule mix of the heterogeneous workload, skewed toward the cheap
/// standard-family schedules so the acceptance speedup stays load-bound.
const SCHEDULE_MIX: [(Schedule, f32); 4] = [
    (Schedule::Reference, 0.45),
    (Schedule::Gscore, 0.20),
    (Schedule::GccHardware, 0.20),
    (Schedule::GaussianWise, 0.15),
];

/// Resolution overrides the workload samples (besides native).
const RESOLUTIONS: [(u32, u32); 2] = [(320, 180), (256, 192)];

/// Per-frame deadline the interactive clients request (generous on a
/// warm cache, routinely missed by a naive load-render-evict service —
/// which is exactly what the deadline-miss counters should show).
const INTERACTIVE_DEADLINE: Duration = Duration::from_millis(250);

fn pick_weighted<T: Copy>(rng: &mut StdRng, choices: &[(T, f32)]) -> T {
    let total: f32 = choices.iter().map(|(_, w)| w).sum();
    let mut pick = rng.gen::<f32>() * total;
    for (v, w) in choices {
        if pick < *w {
            return *v;
        }
        pick -= w;
    }
    choices.last().expect("non-empty choices").0
}

fn random_view(rng: &mut StdRng) -> ViewSpec {
    match rng.gen::<f32>() {
        v if v < 0.70 => ViewSpec::trajectory(rng.gen::<f32>().min(1.0)),
        v if v < 0.90 => ViewSpec::Orbit {
            angle: rng.gen::<f32>() * std::f32::consts::TAU,
            radius_scale: 0.8 + 0.6 * rng.gen::<f32>(),
            height_offset: rng.gen::<f32>() - 0.5,
        },
        _ => ViewSpec::look_at(
            Vec3::new(
                2.0 + 2.0 * rng.gen::<f32>(),
                0.5 + rng.gen::<f32>(),
                -4.0 + rng.gen::<f32>(),
            ),
            Vec3::ZERO,
        ),
    }
}

/// One bulk stream of the workload: scene, spec, session defaults.
#[derive(Clone)]
struct BulkStream {
    scene: String,
    spec: StreamSpec,
    options: RenderOptions,
}

/// One interactive request: scene, view, options (always
/// submit-validatable: ROIs only ride on explicit resolutions).
#[derive(Clone)]
struct InteractiveReq {
    scene: String,
    view: ViewSpec,
    options: RenderOptions,
}

/// A client's scripted work, replayed identically against both
/// configurations.
#[derive(Clone)]
enum ClientScript {
    Bulk(Vec<BulkStream>),
    Interactive(Vec<InteractiveReq>),
}

fn random_bulk_stream(rng: &mut StdRng, scenes: &[BenchScene]) -> BulkStream {
    let scene_mix: Vec<(&str, f32)> = scenes.iter().map(|s| (s.id, s.weight)).collect();
    let id = pick_weighted(rng, &scene_mix);
    let frames = 4 + (rng.gen::<u64>() % 5) as usize; // 4..=8
    let spec = match rng.gen::<f32>() {
        v if v < 0.45 => {
            let a = rng.gen::<f32>().min(1.0);
            let b = rng.gen::<f32>().min(1.0);
            StreamSpec::TrajectorySweep {
                t0: a.min(b),
                t1: a.max(b),
                frames,
            }
        }
        v if v < 0.80 => StreamSpec::OrbitLoop {
            frames,
            radius_scale: 0.8 + 0.6 * rng.gen::<f32>(),
            height_offset: rng.gen::<f32>() - 0.5,
        },
        _ => StreamSpec::ViewList((0..frames).map(|_| random_view(rng)).collect()),
    };
    let mut options = RenderOptions::default().with_schedule(pick_weighted(rng, &SCHEDULE_MIX));
    if rng.gen::<f32>() < 0.25 {
        let (w, h) = RESOLUTIONS[(rng.gen::<u64>() % RESOLUTIONS.len() as u64) as usize];
        options = options.at_resolution(w, h);
    }
    BulkStream {
        scene: id.to_string(),
        spec,
        options,
    }
}

fn random_interactive(rng: &mut StdRng, scenes: &[BenchScene]) -> InteractiveReq {
    let scene_mix: Vec<(&str, f32)> = scenes.iter().map(|s| (s.id, s.weight)).collect();
    let id = pick_weighted(rng, &scene_mix);
    let view = random_view(rng);
    let mut options = RenderOptions::default().with_schedule(pick_weighted(rng, &SCHEDULE_MIX));
    // 35% of interactive requests override the resolution; half of those
    // also ask for an ROI (bounds are known at submit for overridden
    // resolutions, so the whole request validates up front).
    if rng.gen::<f32>() < 0.35 {
        let (w, h) = RESOLUTIONS[(rng.gen::<u64>() % RESOLUTIONS.len() as u64) as usize];
        options = options.at_resolution(w, h);
        if rng.gen::<f32>() < 0.5 {
            let rw = w / 4 + (rng.gen::<u64>() % u64::from(w / 4)) as u32;
            let rh = h / 4 + (rng.gen::<u64>() % u64::from(h / 4)) as u32;
            let rx = (rng.gen::<u64>() % u64::from(w - rw + 1)) as u32;
            let ry = (rng.gen::<u64>() % u64::from(h - rh + 1)) as u32;
            options = options.with_roi(Roi::new(rx, ry, rw, rh));
        }
    }
    InteractiveReq {
        scene: id.to_string(),
        view,
        options,
    }
}

/// Deterministic client scripts: `bulk_clients` stream replayers plus
/// `interactive_clients` single-frame submitters. A pure function of
/// `(scene set, counts, seed)` — both service configurations replay
/// exactly the same work.
fn workload(
    scenes: &[BenchScene],
    bulk_clients: usize,
    streams_per_client: usize,
    interactive_clients: usize,
    frames_per_interactive: usize,
    seed: u64,
) -> Vec<ClientScript> {
    let mut scripts = Vec::new();
    for c in 0..bulk_clients {
        let mut rng = StdRng::seed_from_u64(seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        scripts.push(ClientScript::Bulk(
            (0..streams_per_client)
                .map(|_| random_bulk_stream(&mut rng, scenes))
                .collect(),
        ));
    }
    for c in 0..interactive_clients {
        let mut rng = StdRng::seed_from_u64(
            (seed ^ 0xA5A5_A5A5).wrapping_add((c as u64).wrapping_mul(0xD1B5_4A32_D192_ED03)),
        );
        scripts.push(ClientScript::Interactive(
            (0..frames_per_interactive)
                .map(|_| random_interactive(&mut rng, scenes))
                .collect(),
        ));
    }
    scripts
}

fn total_frames(scripts: &[ClientScript]) -> usize {
    scripts
        .iter()
        .map(|s| match s {
            ClientScript::Bulk(streams) => streams.iter().map(|b| b.spec.len()).sum(),
            ClientScript::Interactive(reqs) => reqs.len(),
        })
        .sum()
}

/// One measured service configuration.
struct ConfigRow {
    name: &'static str,
    cache_budget_bytes: usize,
    max_batch: usize,
    workers: usize,
    wall_ms: f64,
    throughput_rps: f64,
    stats: ServeStats,
}

/// Replays the workload through a fresh service with `cfg`.
fn run_config(
    name: &'static str,
    cfg: ServeConfig,
    registry: &[(String, SceneSource)],
    scripts: &[ClientScript],
) -> ConfigRow {
    let service = RenderService::new(cfg.clone(), registry.to_vec());
    let workers = service.workers();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for script in scripts {
            let service = &service;
            scope.spawn(move || match script {
                ClientScript::Bulk(streams) => {
                    for b in streams {
                        let session = service
                            .session(b.scene.clone(), b.options.clone())
                            .expect("bench session");
                        let stream = session
                            .stream_with(b.spec.clone(), StreamConfig::bulk().with_window(4))
                            .expect("bench stream");
                        for item in stream {
                            item.expect("bulk stream frame failed");
                        }
                    }
                }
                ClientScript::Interactive(reqs) => {
                    for r in reqs {
                        let session = service
                            .session(r.scene.clone(), r.options.clone())
                            .expect("bench session");
                        let mut stream = session
                            .stream_with(
                                StreamSpec::ViewList(vec![r.view.clone()]),
                                StreamConfig::default()
                                    .with_window(1)
                                    .with_deadline(INTERACTIVE_DEADLINE),
                            )
                            .expect("bench submit");
                        stream
                            .next_frame()
                            .expect("interactive frame present")
                            .expect("interactive frame failed");
                    }
                }
            });
        }
    });
    let wall = start.elapsed().as_secs_f64();
    let total = total_frames(scripts);
    let stats = service.shutdown();
    assert_eq!(stats.frames as usize, total, "lost frames in {name}");
    ConfigRow {
        name,
        cache_budget_bytes: cfg.cache_budget_bytes,
        max_batch: cfg.max_batch,
        workers,
        wall_ms: wall * 1e3,
        throughput_rps: total as f64 / wall,
        stats,
    }
}

/// Outcome of the `--chaos` phase: storm accounting plus the disarmed
/// recovery replay's throughput.
struct ChaosOutcome {
    seed: u64,
    /// Streams/requests the storm attempted to open.
    storm_requests: u64,
    /// Admitted streams that ran to an ordinary end (all frames Ok, or a
    /// typed terminal error) — nothing stranded.
    resolved: u64,
    /// Streams turned away at admission (quarantine or overload).
    turned_away: u64,
    /// Frames delivered despite the storm.
    delivered_frames: u64,
    /// Admitted streams that absorbed at least one injected failure.
    failed_streams: u64,
    injected_load_faults: u64,
    injected_render_panics: u64,
    respawns: u64,
    lost_workers: u64,
    quarantines: u64,
    /// Frames of the fault-free recovery replay (all must succeed).
    recovery_frames: u64,
    recovery_wall_ms: f64,
    recovery_throughput_rps: f64,
    /// Every storm request resolved or was turned away with a typed
    /// error, the recovery replay delivered every frame, and the pool
    /// recovered to full width.
    all_resolved: bool,
}

/// Replays the workload through a fault-injected service (seeded load
/// failures/panics/stalls plus render panics), then disarms the plan,
/// lets quarantines lapse, and replays the same workload *fault-free on
/// the same service* with strict expectations — the recovery throughput
/// is the headline number: a service that survives the storm but limps
/// afterwards fails here.
fn run_chaos(
    registry: &[(String, SceneSource)],
    scripts: &[ClientScript],
    scene_bytes: usize,
    seed: u64,
) -> ChaosOutcome {
    use std::sync::atomic::{AtomicU64, Ordering};

    let plan = Arc::new(
        FaultPlan::new(seed)
            .with_retryable_load_failures(120)
            .with_fatal_load_failures(40)
            .with_load_panics(30)
            .with_slow_loads(30, Duration::from_millis(1))
            .with_render_panics(25),
    );
    let faulty: Vec<(String, SceneSource)> = registry
        .iter()
        .map(|(id, src)| {
            (
                id.clone(),
                SceneSource::faulty(id.clone(), src.clone(), Arc::clone(&plan)),
            )
        })
        .collect();
    let mut renderers = ScheduleRenderers::default();
    for schedule in Schedule::ALL {
        renderers = renderers.with(
            schedule,
            Box::new(ChaosRenderer::new(schedule.renderer(), Arc::clone(&plan))),
        );
    }
    let quarantine = Duration::from_millis(10);
    let service = RenderService::with_renderers(
        ServeConfig {
            workers: 0,
            cache_budget_bytes: scene_bytes * 2,
            max_batch: 8,
            quarantine_for: quarantine,
            load_retry: RetryPolicy {
                max_attempts: 2,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
            },
            ..ServeConfig::default()
        },
        faulty,
        renderers,
    );

    // The storm: the same scripted workload, consumed tolerantly — a
    // frame may fail with a typed error and a stream may be turned away
    // at admission, but every admitted stream must still resolve (a
    // stranded stream hangs the bench, which is the failure this phase
    // exists to catch). Rounds are paced so quarantine windows lapse
    // mid-storm and half-open probes actually run.
    let resolved = AtomicU64::new(0);
    let turned_away = AtomicU64::new(0);
    let delivered = AtomicU64::new(0);
    let failed_streams = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for script in scripts {
            let service = &service;
            let (resolved, turned_away, delivered, failed_streams) =
                (&resolved, &turned_away, &delivered, &failed_streams);
            scope.spawn(move || {
                let drain = |open: Result<gcc_serve::FrameStream, ServeError>| match open {
                    Ok(stream) => {
                        let mut saw_failure = false;
                        for item in stream {
                            match item {
                                Ok(_) => {
                                    delivered.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(
                                    ServeError::Load { .. }
                                    | ServeError::WorkerPanicked
                                    | ServeError::ShuttingDown,
                                ) => saw_failure = true,
                                Err(other) => {
                                    panic!("chaos storm: unexpected frame error: {other}")
                                }
                            }
                        }
                        if saw_failure {
                            failed_streams.fetch_add(1, Ordering::Relaxed);
                        }
                        resolved.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(ServeError::Quarantined { .. } | ServeError::Overloaded { .. }) => {
                        turned_away.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(other) => panic!("chaos storm: unexpected admission error: {other}"),
                };
                match script {
                    ClientScript::Bulk(streams) => {
                        for b in streams {
                            std::thread::sleep(Duration::from_millis(2));
                            let session = service
                                .session(b.scene.clone(), b.options.clone())
                                .expect("chaos storm: sessions always open");
                            drain(
                                session.stream_with(
                                    b.spec.clone(),
                                    StreamConfig::bulk().with_window(4),
                                ),
                            );
                        }
                    }
                    ClientScript::Interactive(reqs) => {
                        for r in reqs {
                            std::thread::sleep(Duration::from_millis(1));
                            let session = service
                                .session(r.scene.clone(), r.options.clone())
                                .expect("chaos storm: sessions always open");
                            drain(session.stream_with(
                                StreamSpec::ViewList(vec![r.view.clone()]),
                                StreamConfig::default().with_window(1),
                            ));
                        }
                    }
                }
            });
        }
    });
    let storm_requests: u64 = scripts
        .iter()
        .map(|s| match s {
            ClientScript::Bulk(streams) => streams.len() as u64,
            ClientScript::Interactive(reqs) => reqs.len() as u64,
        })
        .sum();
    let resolved = resolved.into_inner();
    let turned_away = turned_away.into_inner();

    // Fault-free recovery on the same service: disarm, let every
    // quarantine window lapse, then replay the workload strictly — the
    // respawned pool and readmitted scenes must deliver every frame.
    plan.disarm();
    std::thread::sleep(quarantine * 3);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for script in scripts {
            let service = &service;
            scope.spawn(move || match script {
                ClientScript::Bulk(streams) => {
                    for b in streams {
                        let session = service
                            .session(b.scene.clone(), b.options.clone())
                            .expect("recovery session");
                        let stream = session
                            .stream_with(b.spec.clone(), StreamConfig::bulk().with_window(4))
                            .expect("recovery stream admits");
                        for item in stream {
                            item.expect("recovery frame failed after disarm");
                        }
                    }
                }
                ClientScript::Interactive(reqs) => {
                    for r in reqs {
                        let session = service
                            .session(r.scene.clone(), r.options.clone())
                            .expect("recovery session");
                        let mut stream = session
                            .stream_with(
                                StreamSpec::ViewList(vec![r.view.clone()]),
                                StreamConfig::default().with_window(1),
                            )
                            .expect("recovery submit admits");
                        stream
                            .next_frame()
                            .expect("recovery frame present")
                            .expect("recovery frame failed after disarm");
                    }
                }
            });
        }
    });
    let recovery_wall = start.elapsed().as_secs_f64();
    let recovery_frames = total_frames(scripts) as u64;
    let stats = service.shutdown();

    ChaosOutcome {
        seed,
        storm_requests,
        resolved,
        turned_away,
        delivered_frames: delivered.into_inner(),
        failed_streams: failed_streams.into_inner(),
        injected_load_faults: plan.injected_load_faults(),
        injected_render_panics: plan.injected_render_panics(),
        respawns: stats.respawns,
        lost_workers: stats.lost_workers,
        quarantines: stats.quarantines(),
        recovery_frames,
        recovery_wall_ms: recovery_wall * 1e3,
        recovery_throughput_rps: recovery_frames as f64 / recovery_wall,
        all_resolved: resolved + turned_away == storm_requests && stats.lost_workers == 0,
    }
}

/// Serve-path determinism, streamed and submitted: a sample of streams
/// and single-frame requests rendered through the service must be
/// bit-identical to direct `render_job` calls on the file-loaded scenes
/// — including the posed / overridden / ROI'd ones. Returns the number
/// of frames checked.
fn parity_check(
    registry: &[(String, SceneSource)],
    loaded: &[(String, Arc<Scene>)],
    scripts: &[ClientScript],
) -> usize {
    let service = RenderService::new(ServeConfig::default(), registry.to_vec());
    let mut checked = 0;

    let direct_frame = |scene: &Scene, view: &ViewSpec, options: &RenderOptions| {
        let cam = scene
            .resolve_view(view, options)
            .expect("parity request resolves");
        options.schedule.renderer().render_job(
            &RenderJob::with_options(&scene.gaussians, &cam, options.clone()),
            &mut FrameScratch::new(),
        )
    };
    let scene_by_id = |id: &str| {
        &loaded
            .iter()
            .find(|(sid, _)| sid == id)
            .expect("sample scene registered")
            .1
    };

    // One heterogeneous single-frame request per scene, via the session
    // submit shim.
    for (id, _) in loaded {
        let options = RenderOptions::default()
            .with_schedule(Schedule::Gscore)
            .at_resolution(256, 192)
            .with_roi(Roi::new(32, 24, 128, 96));
        let session = service
            .session(id.clone(), options.clone())
            .expect("session");
        let served = session
            .render_blocking(ViewSpec::orbit(1.2))
            .expect("parity submit");
        let want = direct_frame(scene_by_id(id), &ViewSpec::orbit(1.2), &options);
        assert_eq!(served.image, want.image, "submit parity diverged on {id}");
        assert_eq!(served.stats, want.stats);
        checked += 1;
    }

    // The head of the first bulk client's first stream, frame by frame,
    // against direct renders of the same view list.
    let first = scripts.iter().find_map(|s| match s {
        ClientScript::Bulk(streams) => streams.first(),
        ClientScript::Interactive(_) => None,
    });
    if let Some(b) = first {
        let session = service
            .session(b.scene.clone(), b.options.clone())
            .expect("session");
        let stream = session
            .stream_with(b.spec.clone(), StreamConfig::bulk().with_window(2))
            .expect("parity stream");
        let scene = scene_by_id(&b.scene);
        for (item, view) in stream.zip(b.spec.views()) {
            let served = item.expect("parity stream frame");
            let want = direct_frame(scene, &view, &b.options);
            assert_eq!(
                served.image, want.image,
                "stream parity diverged on {} {view:?}",
                b.scene
            );
            assert_eq!(served.stats, want.stats);
            checked += 1;
        }
    }
    checked
}

/// Outcome of the multi-process `--wire` phase.
struct WireOutcome {
    shards: usize,
    clients: usize,
    requests: usize,
    resolved: usize,
    rejections: usize,
    parity_frames: usize,
    delivered_frames: usize,
    wall_ms: f64,
    throughput_fps: f64,
    clean_exit: bool,
    all_resolved: bool,
    parity_ok: bool,
}

/// Finds a sibling wire binary next to the bench executable (cargo puts
/// all workspace bins of one profile in the same `target/<profile>/`).
fn locate_wire_binary(name: &str) -> PathBuf {
    let exe = std::env::current_exe().expect("current_exe");
    let mut dir = exe.parent().expect("exe dir").to_path_buf();
    // Test harnesses run from target/<profile>/deps/.
    if dir.ends_with("deps") {
        dir.pop();
    }
    let path = dir.join(format!("{name}{}", std::env::consts::EXE_SUFFIX));
    if !path.is_file() {
        eprintln!(
            "bench_serve: --wire needs the {name} binary at {} — build it first with \
             `cargo build --release --workspace --all-targets`",
            path.display()
        );
        std::process::exit(1);
    }
    path
}

/// Spawns a wire process and parses its `… listening on <addr>` banner.
/// A drain thread keeps reading the child's stdout so it never blocks on
/// a full pipe.
fn spawn_listening(mut cmd: Command, what: &str) -> (Child, SocketAddr) {
    cmd.stdout(Stdio::piped());
    let mut child = cmd.spawn().unwrap_or_else(|e| {
        eprintln!("bench_serve: spawning {what} failed: {e}");
        std::process::exit(1);
    });
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("child banner");
    let addr = line
        .trim()
        .rsplit(' ')
        .next()
        .and_then(|a| a.parse::<SocketAddr>().ok())
        .unwrap_or_else(|| {
            eprintln!("bench_serve: {what} printed no listening address, got {line:?}");
            std::process::exit(1);
        });
    std::thread::spawn(move || {
        let mut sink = String::new();
        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
            sink.clear();
        }
    });
    (child, addr)
}

/// Waits for a wire child to exit cleanly, with a hang backstop.
fn wait_child(mut child: Child, what: &str) -> bool {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match child.try_wait().expect("child status") {
            Some(status) => {
                if !status.success() {
                    eprintln!("bench_serve: {what} exited with {status}");
                }
                return status.success();
            }
            None if Instant::now() >= deadline => {
                eprintln!("bench_serve: {what} did not exit within 30s; killing it");
                let _ = child.kill();
                let _ = child.wait();
                return false;
            }
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// The multi-process wire deployment: two `gcc-served` backends and a
/// `gcc-shard` consistent-hash proxy as real child processes over
/// loopback, seeded clients driving streams through the proxy, every
/// delivered frame compared bit-identical against direct in-process
/// renders, then a wire-`Shutdown` drain of the whole fleet.
fn run_wire(
    scenes: &[BenchScene],
    dir: &Path,
    loaded: &[(String, Arc<Scene>)],
    wire_clients: usize,
) -> WireOutcome {
    const SHARDS: usize = 2;
    let served_bin = locate_wire_binary("gcc-served");
    let shard_bin = locate_wire_binary("gcc-shard");

    // Every backend registers every scene file; the proxy's hash ring
    // decides which shard actually serves (and therefore loads) each.
    let mut backends = Vec::new();
    for _ in 0..SHARDS {
        let mut cmd = Command::new(&served_bin);
        cmd.args(["--addr", "127.0.0.1:0", "--workers", "2"]).args([
            "--handlers",
            "4",
            "--cache-mb",
            "64",
        ]);
        for s in scenes {
            let path = dir.join(format!("{}.{}", s.id, if s.json { "json" } else { "bin" }));
            cmd.arg("--scene")
                .arg(format!("{}={}", s.id, path.display()));
        }
        backends.push(spawn_listening(cmd, "gcc-served"));
    }
    let mut cmd = Command::new(&shard_bin);
    cmd.args(["--addr", "127.0.0.1:0", "--probe-ms", "100"]);
    for (_, addr) in &backends {
        cmd.arg("--backend").arg(addr.to_string());
    }
    let (proxy_child, proxy_addr) = spawn_listening(cmd, "gcc-shard");

    // Reference frames rendered in-process: every client streams the
    // same per-scene orbit, so one direct render per scene suffices for
    // the bit-identity check.
    let spec = StreamSpec::orbit(3);
    let options = RenderOptions::default()
        .with_schedule(Schedule::GccHardware)
        .at_resolution(192, 144);
    let expected: Arc<Vec<(String, Vec<gcc_render::Frame>)>> = Arc::new(
        loaded
            .iter()
            .map(|(id, scene)| {
                let frames = spec
                    .views()
                    .into_iter()
                    .map(|view| {
                        let cam = scene
                            .resolve_view(&view, &options)
                            .expect("wire parity view resolves");
                        options.schedule.renderer().render_job(
                            &RenderJob::with_options(&scene.gaussians, &cam, options.clone()),
                            &mut FrameScratch::new(),
                        )
                    })
                    .collect();
                (id.clone(), frames)
            })
            .collect(),
    );

    let started = Instant::now();
    let mut handles = Vec::new();
    for c in 0..wire_clients {
        let expected = Arc::clone(&expected);
        let spec = spec.clone();
        let options = options.clone();
        handles.push(std::thread::spawn(move || {
            let (mut requests, mut resolved, mut rejections) = (0usize, 0usize, 0usize);
            let (mut parity_frames, mut mismatches, mut delivered) = (0usize, 0usize, 0usize);
            let mut client = WireClient::connect(proxy_addr).expect("connect shard proxy");
            let config = if c % 2 == 0 {
                StreamConfig::default()
                    .with_priority(Priority::Interactive)
                    .with_deadline(INTERACTIVE_DEADLINE)
                    .with_window(2)
            } else {
                StreamConfig::bulk().with_window(4)
            };
            for (id, want_frames) in expected.iter() {
                requests += 1;
                // A freshly probed fleet can transiently report a shard
                // unavailable; that is backpressure, not failure.
                let mut attempts = 0;
                let mut stream = loop {
                    match client.open(id, options.clone(), spec.clone(), config) {
                        Ok(s) => break s,
                        Err(WireError::Rejected(
                            WireRejection::Unavailable { .. } | WireRejection::Overloaded { .. },
                        )) if attempts < 100 => {
                            attempts += 1;
                            std::thread::sleep(Duration::from_millis(20));
                        }
                        Err(e) => panic!("wire open of {id} failed: {e}"),
                    }
                };
                let mut index = 0usize;
                loop {
                    match client.next_frame(&mut stream) {
                        Ok(Some(frame)) => {
                            delivered += 1;
                            parity_frames += 1;
                            let want = &want_frames[index];
                            if frame.image != want.image || frame.stats != want.stats {
                                mismatches += 1;
                                eprintln!(
                                    "bench_serve: wire frame {index} of {id} diverged from the \
                                     direct render"
                                );
                            }
                            index += 1;
                        }
                        Ok(None) => break,
                        Err(WireError::Rejected(_)) => {
                            rejections += 1;
                            index += 1;
                        }
                        Err(e) => panic!("wire stream on {id} failed: {e}"),
                    }
                }
                if index == want_frames.len() {
                    resolved += 1;
                }
            }
            // One unknown-scene open per client: the typed rejection
            // must cross proxy and backend intact, and counts as
            // resolved.
            requests += 1;
            match client.open(
                "atlantis",
                RenderOptions::default(),
                StreamSpec::orbit(1),
                StreamConfig::default(),
            ) {
                Err(WireError::Rejected(WireRejection::UnknownScene(_))) => {
                    rejections += 1;
                    resolved += 1;
                }
                Ok(_) => panic!("unknown scene opened over the wire"),
                Err(e) => panic!("expected a typed UnknownScene rejection, got {e}"),
            }
            (
                requests,
                resolved,
                rejections,
                parity_frames,
                mismatches,
                delivered,
            )
        }));
    }

    let (mut requests, mut resolved, mut rejections) = (0usize, 0usize, 0usize);
    let (mut parity_frames, mut mismatches, mut delivered_frames) = (0usize, 0usize, 0usize);
    for handle in handles {
        let (req, res, rej, par, mis, del) = handle.join().expect("wire client thread");
        requests += req;
        resolved += res;
        rejections += rej;
        parity_frames += par;
        mismatches += mis;
        delivered_frames += del;
    }
    let wall = started.elapsed().as_secs_f64();

    // Drain the fleet over the wire — the protocol's SIGTERM. Proxy
    // first (its upstream connections close with it), then each backend
    // directly.
    let mut clean_exit = true;
    let mut shutter = WireClient::connect(proxy_addr).expect("connect proxy for shutdown");
    shutter.shutdown_server().expect("proxy shutdown ack");
    drop(shutter);
    clean_exit &= wait_child(proxy_child, "gcc-shard");
    for (child, addr) in backends {
        let mut shutter = WireClient::connect(addr).expect("connect backend for shutdown");
        shutter.shutdown_server().expect("backend shutdown ack");
        drop(shutter);
        clean_exit &= wait_child(child, "gcc-served");
    }

    WireOutcome {
        shards: SHARDS,
        clients: wire_clients,
        requests,
        resolved,
        rejections,
        parity_frames,
        delivered_frames,
        wall_ms: wall * 1e3,
        throughput_fps: delivered_frames as f64 / wall,
        clean_exit,
        all_resolved: resolved == requests && clean_exit,
        parity_ok: mismatches == 0 && parity_frames > 0,
    }
}

/// Measured quality of one ladder rung against the full-quality render
/// of the same views, plus the floors the ladder documents for it.
struct RungQuality {
    name: &'static str,
    psnr_db: f64,
    ssim: f64,
    min_psnr_db: f64,
    min_ssim: f64,
}

/// Outcome of the `--lod` phase: the same deadline-carrying orbit served
/// with and without the adaptive quality ladder, plus the per-rung
/// quality deltas versus full renders.
struct LodOutcome {
    scene: String,
    frames: u64,
    deadline_ms: f64,
    full_ms: f64,
    floor_ms: f64,
    misses_ladder_on: u64,
    misses_ladder_off: u64,
    degraded_frames: u64,
    frames_by_rung: Vec<u64>,
    /// Every frame of both runs was delivered.
    all_resolved: bool,
    rungs: Vec<RungQuality>,
    /// Every rung's measured PSNR/SSIM met its documented floor.
    quality_ok: bool,
}

/// Renders `view` of a hierarchy-attached scene the way the serve layer
/// dispatches `rung`: knobs merged into the options, the camera resolved
/// at the reduced resolution, the rung's hierarchy level, and the
/// filtered upscale back to the native frame size.
fn render_rung(
    scene: &Scene,
    rung: &QualityRung,
    view: &ViewSpec,
    scratch: &mut FrameScratch,
) -> gcc_render::Frame {
    let target = scene.resolution;
    let options = rung.apply(&RenderOptions::default(), target);
    let cam = scene
        .resolve_view(view, &options)
        .expect("lod bench view resolves");
    let gaussians = scene.lod.as_ref().map_or(&scene.gaussians[..], |l| {
        l.level_gaussians(&scene.gaussians, rung.lod_level)
    });
    let mut frame = Schedule::Reference
        .renderer()
        .render_job(&RenderJob::with_options(gaussians, &cam, options), scratch);
    if (frame.image.width(), frame.image.height()) != target {
        frame.image = upscale_bilinear(&frame.image, target.0, target.1);
    }
    frame
}

/// Serves `frames` deadline-carrying orbit frames of `id` sequentially
/// (cache pre-warmed by one deadline-free frame, which also prices rung 0
/// for the ladder run) and returns the final stats.
fn lod_serve_run(
    registry: &[(String, SceneSource)],
    id: &str,
    lod: Option<LodPolicy>,
    frames: usize,
    deadline: Duration,
) -> ServeStats {
    let service = RenderService::new(
        ServeConfig {
            workers: 2,
            lod,
            ..ServeConfig::default()
        },
        registry.to_vec(),
    );
    service
        .render_blocking(RenderRequest::trajectory(id, 0.05))
        .expect("lod warm frame");
    let session = service
        .session(id, RenderOptions::default())
        .expect("lod session");
    let stream = session
        .stream_with(
            StreamSpec::OrbitLoop {
                frames,
                radius_scale: 1.0,
                height_offset: 0.0,
            },
            StreamConfig::default()
                .with_window(1)
                .with_deadline(deadline),
        )
        .expect("lod stream");
    for item in stream {
        item.expect("lod frame failed");
    }
    service.shutdown()
}

/// The `--lod` phase: calibrates a deadline that full-quality rendering
/// cannot meet but the ladder's cheap rungs can, replays the same
/// deadline-carrying orbit ladder-on and ladder-off, and measures each
/// rung's PSNR/SSIM against full renders of the same views. The gate
/// (`perf_gate`) refuses the record unless the ladder run missed zero
/// deadlines, the exact run missed at least one, every frame resolved,
/// and every rung met its documented quality floor.
fn run_lod(dir: &Path, smoke: bool) -> LodOutcome {
    // The shared bench scenes are deliberately small (the cache-pressure
    // workloads want many cheap scenes), which leaves the rungs
    // overhead-dominated and too close in cost to separate a deadline.
    // The LOD phase builds its own heavier scene so full and floor costs
    // sit an order of magnitude apart.
    let id = "lodscene";
    let built = ScenePreset::Lego.build(&SceneConfig::with_scale(0.5));
    let path = dir.join("lodscene.bin");
    io::write_binary_file(&built, &path).expect("write lod scene");
    let registry = vec![(id.to_string(), SceneSource::File(path))];
    // A wider dispatch margin than the serving default: the committed
    // record is a gate, so the ladder should only climb to rungs with
    // comfortable (2x) predicted headroom under the deadline.
    let policy = LodPolicy {
        margin: 2.0,
        ..LodPolicy::default()
    };
    let ladder = policy.ladder.clone();
    let floor = ladder.floor();

    let mut qscene = built;
    attach_hierarchy(&mut qscene, &policy.hierarchy);
    let mut scratch = FrameScratch::new();

    // Calibration: best-of-3 direct render cost at the exact rung and at
    // the floor. The deadline goes between them — geometrically, with an
    // absolute floor against timer noise — so full quality *must* miss
    // while the cheap rungs have comfortable headroom.
    let calib_view = ViewSpec::trajectory(0.3);
    let mut time_rung = |idx: usize| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t0 = Instant::now();
            render_rung(&qscene, &ladder.rungs()[idx], &calib_view, &mut scratch);
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        best
    };
    let full_ms = time_rung(0);
    let floor_ms = time_rung(floor);
    assert!(
        floor_ms < full_ms / 2.0,
        "floor rung ({floor_ms:.2} ms) is not meaningfully cheaper than full ({full_ms:.2} ms)"
    );
    let deadline_ms = (full_ms * floor_ms)
        .sqrt()
        .max(4.0 * floor_ms)
        .max(2.0)
        .min(0.7 * full_ms);
    let deadline = Duration::from_secs_f64(deadline_ms / 1e3);

    // Per-rung quality versus the full render, worst case over a spread
    // of views. The full rung is exact by construction (PSNR capped for
    // the record).
    let views = [
        ViewSpec::trajectory(0.15),
        ViewSpec::trajectory(0.5),
        ViewSpec::trajectory(0.85),
    ];
    let full_frames: Vec<gcc_render::Frame> = views
        .iter()
        .map(|v| render_rung(&qscene, &ladder.rungs()[0], v, &mut scratch))
        .collect();
    let mut rungs = Vec::new();
    let mut quality_ok = true;
    for rung in ladder.rungs() {
        let (mut worst_psnr, mut worst_ssim) = (f64::INFINITY, f64::INFINITY);
        for (v, want) in views.iter().zip(&full_frames) {
            let got = render_rung(&qscene, rung, v, &mut scratch);
            worst_psnr = worst_psnr.min(psnr(&got.image, &want.image).min(99.0));
            worst_ssim = worst_ssim.min(ssim(&got.image, &want.image));
        }
        quality_ok &= worst_psnr >= rung.min_psnr_db && worst_ssim >= rung.min_ssim;
        rungs.push(RungQuality {
            name: rung.name,
            psnr_db: worst_psnr,
            ssim: worst_ssim,
            min_psnr_db: rung.min_psnr_db,
            min_ssim: rung.min_ssim,
        });
    }

    // The same deadline-carrying orbit, ladder-on then ladder-off.
    let frames = if smoke { 12 } else { 40 };
    let on = lod_serve_run(&registry, id, Some(policy), frames, deadline);
    let off = lod_serve_run(&registry, id, None, frames, deadline);
    let expected = frames as u64 + 1; // + the deadline-free warm frame
    LodOutcome {
        scene: id.to_string(),
        frames: frames as u64,
        deadline_ms,
        full_ms,
        floor_ms,
        misses_ladder_on: on.deadline_misses(),
        misses_ladder_off: off.deadline_misses(),
        degraded_frames: on.lod.degraded_frames,
        frames_by_rung: on.lod.frames_by_rung.clone(),
        all_resolved: on.frames == expected && off.frames == expected,
        rungs,
        quality_ok,
    }
}

fn json_escape_free(s: &str) -> &str {
    // Ids/names here are ASCII identifiers; keep the writer simple.
    assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let chaos = args.iter().any(|a| a == "--chaos");
    let wire = args.iter().any(|a| a == "--wire");
    let lod = args.iter().any(|a| a == "--lod");
    let mut clients = if smoke { 2 } else { 5 };
    let mut per_client = if smoke { 2 } else { 4 };
    let mut out_path = gcc_bench::default_artifact_path("BENCH_serve.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--clients" => {
                clients = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--clients needs a positive integer");
            }
            "--requests" => {
                per_client = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--requests needs a positive integer");
            }
            "--out" => {
                out_path = it.next().expect("--out needs a path").into();
            }
            "--smoke" | "--chaos" | "--wire" | "--lod" => {}
            other => panic!(
                "unknown flag {other} (expected --smoke, --chaos, --wire, --lod, --clients N, \
                 --requests N, --out PATH)"
            ),
        }
    }
    assert!(clients > 0 && per_client > 0, "workload must be non-empty");
    let interactive_clients = (clients / 2).max(1);
    let frames_per_interactive = per_client * 3;

    let scenes = scene_set(smoke);
    let dir = std::env::temp_dir().join(format!("gcc_bench_serve_{}", std::process::id()));
    let (registry, loaded) = build_registry(&scenes, &dir);
    let scene_bytes: usize = loaded.iter().map(|(_, s)| s.approx_bytes()).sum();
    let scripts = workload(
        &scenes,
        clients,
        per_client,
        interactive_clients,
        frames_per_interactive,
        0x5EC7_E5E5,
    );
    let total = total_frames(&scripts);

    let parity_frames = parity_check(&registry, &loaded, &scripts);

    // The chaos phase runs on its own fault-injected service, so the
    // measured fault-free configurations below are unaffected — the
    // committed record's speedup floor is judged on clean runs.
    let chaos_outcome = chaos.then(|| run_chaos(&registry, &scripts, scene_bytes, 0xC4A0_5EED));

    // The wire phase spawns real gcc-served/gcc-shard child processes
    // reading the same on-disk scene files, so it must run before the
    // scene directory is removed. It does not touch the in-process
    // services the measured configurations use.
    let wire_outcome = wire.then(|| run_wire(&scenes, &dir, &loaded, clients.max(2)));

    // The LOD phase replays one deadline-carrying orbit with and without
    // the quality ladder on fresh services over its own heavier scene
    // file in the same directory, so it too runs before cleanup.
    let lod_outcome = lod.then(|| run_lod(&dir, smoke));

    let batched = run_config(
        "batched_lru",
        ServeConfig {
            workers: 0,
            cache_budget_bytes: scene_bytes * 2,
            max_batch: 8,
            ..ServeConfig::default()
        },
        &registry,
        &scripts,
    );
    let naive = run_config(
        "naive_evict",
        ServeConfig {
            workers: 0,
            cache_budget_bytes: 0,
            max_batch: 1,
            ..ServeConfig::default()
        },
        &registry,
        &scripts,
    );
    let speedup = batched.throughput_rps / naive.throughput_rps;
    let _ = std::fs::remove_dir_all(&dir);

    let mut table = TablePrinter::new();
    table.row([
        "config",
        "req/s",
        "int p95 ms",
        "bulk p95 ms",
        "ddl miss",
        "hit rate",
        "loads",
        "frames/batch",
    ]);
    for row in [&batched, &naive] {
        table.row([
            row.name.to_string(),
            format!("{:.1}", row.throughput_rps),
            format!(
                "{:.2}",
                row.stats.priority(Priority::Interactive).latency_p95_ms
            ),
            format!("{:.2}", row.stats.priority(Priority::Bulk).latency_p95_ms),
            format!("{}", row.stats.deadline_misses()),
            format!("{:.2}", row.stats.hit_rate()),
            format!("{}", row.stats.loads()),
            format!("{:.2}", row.stats.frames_per_batch()),
        ]);
    }
    table.print();
    let mut sched_table = TablePrinter::new();
    sched_table.row(["schedule", "requests", "frames", "batches"]);
    for (schedule, c) in &batched.stats.per_schedule {
        sched_table.row([
            schedule.name().to_string(),
            c.requests.to_string(),
            c.frames.to_string(),
            c.batches.to_string(),
        ]);
    }
    sched_table.print();
    println!("speedup vs naive: {speedup:.2}x (parity: {parity_frames} frames bit-identical)");
    if let Some(c) = &chaos_outcome {
        println!(
            "chaos: {}/{} storm requests resolved ({} turned away), {} frames delivered, \
             {} faulted streams; injected {} load faults + {} render panics; \
             {} respawns, {} lost workers, {} quarantines; \
             recovery {:.1} req/s over {} frames — {}",
            c.resolved,
            c.storm_requests,
            c.turned_away,
            c.delivered_frames,
            c.failed_streams,
            c.injected_load_faults,
            c.injected_render_panics,
            c.respawns,
            c.lost_workers,
            c.quarantines,
            c.recovery_throughput_rps,
            c.recovery_frames,
            if c.all_resolved {
                "all resolved"
            } else {
                "REQUESTS STRANDED"
            },
        );
    }
    if let Some(l) = &lod_outcome {
        println!(
            "lod: {} frames of {} under a {:.2} ms deadline (full {:.2} ms, floor {:.2} ms): \
             ladder-on missed {}, ladder-off missed {}; {} degraded frames, rungs {:?} — {}",
            l.frames,
            l.scene,
            l.deadline_ms,
            l.full_ms,
            l.floor_ms,
            l.misses_ladder_on,
            l.misses_ladder_off,
            l.degraded_frames,
            l.frames_by_rung,
            match (
                l.misses_ladder_on == 0 && l.misses_ladder_off > 0,
                l.all_resolved,
                l.quality_ok
            ) {
                (true, true, true) => "ok",
                (false, _, _) => "DEADLINE CONTRACT FAILED",
                (_, false, _) => "FRAMES LOST",
                (_, _, false) => "QUALITY FLOOR VIOLATED",
            },
        );
        for r in &l.rungs {
            println!(
                "  rung {:>8}: psnr {:>5.1} dB (floor {:>4.1}), ssim {:.3} (floor {:.3})",
                r.name, r.psnr_db, r.min_psnr_db, r.ssim, r.min_ssim
            );
        }
    }
    if let Some(w) = &wire_outcome {
        println!(
            "wire: {} shards behind one proxy, {} clients, {}/{} requests resolved \
             ({} typed rejections), {} frames delivered at {:.1} fps, \
             {} bit-identical to direct renders — {}",
            w.shards,
            w.clients,
            w.resolved,
            w.requests,
            w.rejections,
            w.delivered_frames,
            w.throughput_fps,
            w.parity_frames,
            match (w.all_resolved, w.parity_ok) {
                (true, true) => "ok",
                (false, _) => "REQUESTS STRANDED",
                (_, false) => "PARITY DIVERGED",
            },
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"bench_serve/v3\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"bulk_clients\": {clients},\n"));
    json.push_str(&format!("  \"streams_per_client\": {per_client},\n"));
    json.push_str(&format!(
        "  \"interactive_clients\": {interactive_clients},\n"
    ));
    json.push_str(&format!(
        "  \"frames_per_interactive\": {frames_per_interactive},\n"
    ));
    json.push_str(&format!("  \"total_frames\": {total},\n"));
    json.push_str(&format!("  \"workers\": {},\n", batched.workers));
    json.push_str(&format!("  \"parity_checked_frames\": {parity_frames},\n"));
    json.push_str("  \"parity_ok\": true,\n");
    json.push_str("  \"scenes\": [\n");
    for (i, (id, scene)) in loaded.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"id\": \"{}\", \"gaussians\": {}, \"bytes\": {}, \"format\": \"{}\"}}{}\n",
            json_escape_free(id),
            scene.len(),
            scene.approx_bytes(),
            if scenes[i].json { "json" } else { "binary" },
            if i + 1 == loaded.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"configs\": [\n");
    for (i, row) in [&batched, &naive].into_iter().enumerate() {
        let s = &row.stats;
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"cache_budget_bytes\": {}, \"max_batch\": {}, \
             \"wall_ms\": {:.2}, \"throughput_rps\": {:.3}, \
             \"latency_p50_ms\": {:.3}, \"latency_p95_ms\": {:.3}, \
             \"hit_rate\": {:.4}, \"hits\": {}, \"misses\": {}, \"loads\": {}, \
             \"evictions\": {}, \"frames\": {}, \"batches\": {}, \
             \"frames_per_batch\": {:.3}, \"max_queue_depth\": {},\n",
            row.name,
            row.cache_budget_bytes,
            row.max_batch,
            row.wall_ms,
            row.throughput_rps,
            s.latency_p50_ms,
            s.latency_p95_ms,
            s.hit_rate(),
            s.hits(),
            s.misses(),
            s.loads(),
            s.evictions(),
            s.frames,
            s.batches,
            s.frames_per_batch(),
            s.max_queue_depth,
        ));
        json.push_str(&format!(
            "     \"streams\": {{\"opened\": {}, \"completed\": {}, \"cancelled\": {}, \
             \"frames_discarded\": {}}},\n",
            s.streams.opened, s.streams.completed, s.streams.cancelled, s.streams.frames_discarded,
        ));
        json.push_str("     \"per_priority\": [");
        for (j, (priority, c)) in s.per_priority.iter().enumerate() {
            json.push_str(&format!(
                "{}{{\"priority\": \"{}\", \"requests\": {}, \"frames\": {}, \
                 \"max_queued\": {}, \"with_deadline\": {}, \"deadline_misses\": {}, \
                 \"latency_p50_ms\": {:.3}, \"latency_p95_ms\": {:.3}}}",
                if j == 0 { "" } else { ", " },
                json_escape_free(priority.name()),
                c.requests,
                c.frames,
                c.max_queued,
                c.with_deadline,
                c.deadline_misses,
                c.latency_p50_ms,
                c.latency_p95_ms,
            ));
        }
        json.push_str("],\n");
        json.push_str("     \"per_schedule\": [");
        for (j, (schedule, c)) in s.per_schedule.iter().enumerate() {
            json.push_str(&format!(
                "{}{{\"schedule\": \"{}\", \"requests\": {}, \"frames\": {}, \"batches\": {}}}",
                if j == 0 { "" } else { ", " },
                json_escape_free(schedule.name()),
                c.requests,
                c.frames,
                c.batches,
            ));
        }
        json.push_str("]}");
        json.push_str(if i == 1 { "\n" } else { ",\n" });
    }
    json.push_str("  ],\n");
    if let Some(c) = &chaos_outcome {
        json.push_str(&format!(
            "  \"chaos\": {{\"seed\": {}, \"storm_requests\": {}, \"resolved\": {}, \
             \"turned_away\": {}, \"delivered_frames\": {}, \"failed_streams\": {}, \
             \"injected_load_faults\": {}, \"injected_render_panics\": {}, \
             \"respawns\": {}, \"lost_workers\": {}, \"quarantines\": {}, \
             \"recovery_frames\": {}, \"recovery_wall_ms\": {:.2}, \
             \"recovery_throughput_rps\": {:.3}, \"all_resolved\": {}}},\n",
            c.seed,
            c.storm_requests,
            c.resolved,
            c.turned_away,
            c.delivered_frames,
            c.failed_streams,
            c.injected_load_faults,
            c.injected_render_panics,
            c.respawns,
            c.lost_workers,
            c.quarantines,
            c.recovery_frames,
            c.recovery_wall_ms,
            c.recovery_throughput_rps,
            c.all_resolved,
        ));
    }
    if let Some(l) = &lod_outcome {
        json.push_str(&format!(
            "  \"lod\": {{\"scene\": \"{}\", \"frames\": {}, \"deadline_ms\": {:.3}, \
             \"full_ms\": {:.3}, \"floor_ms\": {:.3}, \"misses_ladder_on\": {}, \
             \"misses_ladder_off\": {}, \"degraded_frames\": {}, \"frames_by_rung\": [{}], \
             \"all_resolved\": {}, \"quality_ok\": {},\n",
            json_escape_free(&l.scene),
            l.frames,
            l.deadline_ms,
            l.full_ms,
            l.floor_ms,
            l.misses_ladder_on,
            l.misses_ladder_off,
            l.degraded_frames,
            l.frames_by_rung
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", "),
            l.all_resolved,
            l.quality_ok,
        ));
        json.push_str("   \"rungs\": [");
        for (j, r) in l.rungs.iter().enumerate() {
            json.push_str(&format!(
                "{}{{\"name\": \"{}\", \"psnr_db\": {:.3}, \"ssim\": {:.4}, \
                 \"min_psnr_db\": {:.3}, \"min_ssim\": {:.4}}}",
                if j == 0 { "" } else { ", " },
                json_escape_free(r.name),
                r.psnr_db,
                r.ssim,
                r.min_psnr_db,
                r.min_ssim,
            ));
        }
        json.push_str("]},\n");
    }
    if let Some(w) = &wire_outcome {
        json.push_str(&format!(
            "  \"wire\": {{\"shards\": {}, \"clients\": {}, \"requests\": {}, \
             \"resolved\": {}, \"rejections\": {}, \"parity_frames\": {}, \
             \"delivered_frames\": {}, \"wall_ms\": {:.2}, \"throughput_fps\": {:.3}, \
             \"clean_exit\": {}, \"all_resolved\": {}, \"parity_ok\": {}}},\n",
            w.shards,
            w.clients,
            w.requests,
            w.resolved,
            w.rejections,
            w.parity_frames,
            w.delivered_frames,
            w.wall_ms,
            w.throughput_fps,
            w.clean_exit,
            w.all_resolved,
            w.parity_ok,
        ));
    }
    json.push_str(&format!("  \"speedup_vs_naive\": {speedup:.3}\n"));
    json.push_str("}\n");

    // Self-validate before declaring success: CI keys off the exit code.
    if let Err(e) = gcc_scene::json::parse(&json) {
        eprintln!("bench_serve produced invalid JSON: {e}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("bench_serve could not write {}: {e}", out_path.display());
        std::process::exit(1);
    }
    println!("wrote {}", out_path.display());

    // A chaos run's acceptance is resilience: every storm request
    // resolved or was turned away with a typed error, and the pool
    // recovered to full width. The recovery replay's strict expectations
    // already aborted the process if any post-disarm frame failed.
    if let Some(c) = &chaos_outcome {
        if !c.all_resolved {
            eprintln!(
                "bench_serve: chaos storm stranded requests ({} resolved + {} turned away \
                 of {}, {} lost workers)",
                c.resolved, c.turned_away, c.storm_requests, c.lost_workers
            );
            std::process::exit(1);
        }
    }

    // A lod run's acceptance is the degradation contract: under a
    // deadline full quality cannot meet, the ladder run missed nothing
    // while the exact run missed at least once, every frame of both runs
    // was delivered, and every rung met its documented quality floor.
    if let Some(l) = &lod_outcome {
        if l.misses_ladder_on != 0 || l.misses_ladder_off == 0 || !l.all_resolved || !l.quality_ok {
            eprintln!(
                "bench_serve: lod contract failed (ladder-on misses {}, ladder-off misses {}, \
                 all_resolved {}, quality_ok {})",
                l.misses_ladder_on, l.misses_ladder_off, l.all_resolved, l.quality_ok
            );
            std::process::exit(1);
        }
    }

    // A wire run's acceptance is the deployment contract: every client
    // request through the shard proxy resolved (typed rejections count),
    // every delivered frame was bit-identical to a direct render, and
    // the fleet drained to clean exits on the wire Shutdown request.
    if let Some(w) = &wire_outcome {
        if !w.all_resolved || !w.parity_ok {
            eprintln!(
                "bench_serve: wire deployment failed ({}/{} requests resolved, parity {} over \
                 {} frames, clean exit: {})",
                w.resolved,
                w.requests,
                if w.parity_ok { "held" } else { "DIVERGED" },
                w.parity_frames,
                w.clean_exit,
            );
            std::process::exit(1);
        }
    }

    // Full mode is the acceptance run: the cache-hit batched service must
    // at least double naive load-render-evict throughput on the mixed
    // streaming workload, and the latency classes must separate —
    // Interactive p95 at or below Bulk p95 under contention.
    if !smoke {
        if speedup < 2.0 {
            eprintln!("bench_serve: speedup {speedup:.2}x below the 2x acceptance threshold");
            std::process::exit(1);
        }
        let int_p95 = batched.stats.priority(Priority::Interactive).latency_p95_ms;
        let bulk_p95 = batched.stats.priority(Priority::Bulk).latency_p95_ms;
        if int_p95 > bulk_p95 {
            eprintln!(
                "bench_serve: interactive p95 {int_p95:.2} ms above bulk p95 {bulk_p95:.2} ms \
                 — priority scheduling is not separating the latency classes"
            );
            std::process::exit(1);
        }
    }
}
