//! `bench_serve` — the machine-readable serving-layer harness behind
//! `BENCH_serve.json`.
//!
//! Drives `gcc_serve::RenderService` with a deterministic synthetic
//! workload over the *full request space* of the redesigned API: a mixed
//! scene set written to on-disk binary/JSON files (loads go through
//! `gcc_scene::io`, like production residency misses would), skewed scene
//! popularity drawn from the in-tree PRNG, heterogeneous per-request
//! schedules (`Schedule::{Reference, Gscore, GaussianWise, GccHardware}`),
//! a mix of trajectory / orbit / explicit-pose views, resolution
//! overrides and regions of interest, and several closed-loop client
//! threads. The same request streams run against two configurations:
//!
//! * `batched_lru` — cache budget fits the whole scene set, requests
//!   coalesce into `(scene, schedule, resolution)` batches
//!   (`max_batch > 1`);
//! * `naive_evict` — zero cache budget and `max_batch = 1`, i.e. the
//!   load-render-evict-per-request regime a serverless renderer would be
//!   stuck in.
//!
//! The record includes throughput, p50/p95 request latency, cache hit
//! rate, the per-schedule breakdown and the batched/naive speedup. In
//! full (non-smoke) mode the binary *enforces* `speedup_vs_naive ≥ 2`,
//! and in every mode it checks a sample of served frames — including
//! posed, ROI'd and resolution-overridden ones — bit-identical against
//! direct `Renderer::render_job` output and re-parses the JSON it wrote —
//! exit 0 means "valid record, parity held".
//!
//! ```text
//! cargo run --release -p gcc-bench --bin bench_serve            # full
//! cargo run --release -p gcc-bench --bin bench_serve -- --smoke # CI
//! ```
//!
//! Flags: `--smoke` (tiny scenes, short workload — CI), `--clients N`,
//! `--requests N` (per client), `--out PATH` (default `BENCH_serve.json`
//! at the repository root).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use gcc_bench::TablePrinter;
use gcc_math::Vec3;
use gcc_render::pipeline::FrameScratch;
use gcc_render::{RenderJob, RenderOptions, Roi, Schedule};
use gcc_scene::rng::StdRng;
use gcc_scene::{io, Scene, SceneConfig, ScenePreset, ViewSpec};
use gcc_serve::{RenderRequest, RenderService, SceneSource, ServeConfig, ServeStats};

/// One scene of the benchmark set.
struct BenchScene {
    id: &'static str,
    preset: ScenePreset,
    scale: f32,
    /// Write the scene as JSON (slow loads) instead of binary.
    json: bool,
    /// Relative popularity in the skewed workload.
    weight: f32,
}

fn scene_set(smoke: bool) -> Vec<BenchScene> {
    if smoke {
        vec![
            BenchScene {
                id: "lego",
                preset: ScenePreset::Lego,
                scale: 0.05,
                json: false,
                weight: 0.5,
            },
            BenchScene {
                id: "palace",
                preset: ScenePreset::Palace,
                scale: 0.05,
                json: true,
                weight: 0.3,
            },
            BenchScene {
                id: "train",
                preset: ScenePreset::Train,
                scale: 0.02,
                json: false,
                weight: 0.2,
            },
        ]
    } else {
        vec![
            BenchScene {
                id: "train",
                preset: ScenePreset::Train,
                scale: 0.10,
                json: true,
                weight: 0.40,
            },
            BenchScene {
                id: "lego",
                preset: ScenePreset::Lego,
                scale: 0.50,
                json: true,
                weight: 0.25,
            },
            BenchScene {
                id: "palace",
                preset: ScenePreset::Palace,
                scale: 0.50,
                json: false,
                weight: 0.15,
            },
            BenchScene {
                id: "truck",
                preset: ScenePreset::Truck,
                scale: 0.05,
                json: false,
                weight: 0.12,
            },
            BenchScene {
                id: "drjohnson",
                preset: ScenePreset::Drjohnson,
                scale: 0.02,
                json: false,
                weight: 0.08,
            },
        ]
    }
}

/// Registry entries plus direct copies of the scenes behind them.
type RegistryAndScenes = (Vec<(String, SceneSource)>, Vec<(String, Arc<Scene>)>);

/// Builds the scene files and the service registry; returns the registry
/// plus each scene loaded directly (for parity checks and size totals).
fn build_registry(scenes: &[BenchScene], dir: &PathBuf) -> RegistryAndScenes {
    std::fs::create_dir_all(dir).expect("create scene dir");
    let mut registry = Vec::new();
    let mut loaded = Vec::new();
    for s in scenes {
        let scene = s.preset.build(&SceneConfig::with_scale(s.scale));
        let path = dir.join(format!("{}.{}", s.id, if s.json { "json" } else { "bin" }));
        if s.json {
            io::write_json_file(&scene, &path).expect("write scene json");
        } else {
            io::write_binary_file(&scene, &path).expect("write scene binary");
        }
        registry.push((s.id.to_string(), SceneSource::File(path)));
        loaded.push((s.id.to_string(), Arc::new(scene)));
    }
    (registry, loaded)
}

/// Schedule mix of the heterogeneous workload, skewed toward the cheap
/// standard-family schedules so the acceptance speedup stays load-bound.
const SCHEDULE_MIX: [(Schedule, f32); 4] = [
    (Schedule::Reference, 0.45),
    (Schedule::Gscore, 0.20),
    (Schedule::GccHardware, 0.20),
    (Schedule::GaussianWise, 0.15),
];

/// Resolution overrides the workload samples (besides native).
const RESOLUTIONS: [(u32, u32); 2] = [(320, 180), (256, 192)];

fn pick_weighted<T: Copy>(rng: &mut StdRng, choices: &[(T, f32)]) -> T {
    let total: f32 = choices.iter().map(|(_, w)| w).sum();
    let mut pick = rng.gen::<f32>() * total;
    for (v, w) in choices {
        if pick < *w {
            return *v;
        }
        pick -= w;
    }
    choices.last().expect("non-empty choices").0
}

/// One deterministic heterogeneous request: skewed scene, mixed schedule,
/// mixed view kind, occasional resolution override and ROI.
fn random_request(rng: &mut StdRng, scenes: &[BenchScene]) -> RenderRequest {
    let scene_mix: Vec<(&str, f32)> = scenes.iter().map(|s| (s.id, s.weight)).collect();
    let id = pick_weighted(rng, &scene_mix);

    let view = match rng.gen::<f32>() {
        v if v < 0.70 => ViewSpec::trajectory(rng.gen::<f32>().min(1.0)),
        v if v < 0.90 => ViewSpec::Orbit {
            angle: rng.gen::<f32>() * std::f32::consts::TAU,
            radius_scale: 0.8 + 0.6 * rng.gen::<f32>(),
            height_offset: rng.gen::<f32>() - 0.5,
        },
        _ => ViewSpec::look_at(
            Vec3::new(
                2.0 + 2.0 * rng.gen::<f32>(),
                0.5 + rng.gen::<f32>(),
                -4.0 + rng.gen::<f32>(),
            ),
            Vec3::ZERO,
        ),
    };

    let mut options = RenderOptions::default().with_schedule(pick_weighted(rng, &SCHEDULE_MIX));
    // 35% of requests override the resolution; half of those also ask for
    // an ROI (bounds are known at submit for overridden resolutions, so
    // the whole request validates up front).
    if rng.gen::<f32>() < 0.35 {
        let (w, h) = RESOLUTIONS[(rng.gen::<u64>() % RESOLUTIONS.len() as u64) as usize];
        options = options.at_resolution(w, h);
        if rng.gen::<f32>() < 0.5 {
            let rw = w / 4 + (rng.gen::<u64>() % u64::from(w / 4)) as u32;
            let rh = h / 4 + (rng.gen::<u64>() % u64::from(h / 4)) as u32;
            let rx = (rng.gen::<u64>() % u64::from(w - rw + 1)) as u32;
            let ry = (rng.gen::<u64>() % u64::from(h - rh + 1)) as u32;
            options = options.with_roi(Roi::new(rx, ry, rw, rh));
        }
    }
    RenderRequest::new(id, view).with_options(options)
}

/// Deterministic heterogeneous request streams, one per client. The
/// streams are a pure function of `(scene set, clients, per_client,
/// seed)` — both service configurations replay exactly the same requests.
fn workload(
    scenes: &[BenchScene],
    clients: usize,
    per_client: usize,
    seed: u64,
) -> Vec<Vec<RenderRequest>> {
    (0..clients)
        .map(|c| {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            (0..per_client)
                .map(|_| random_request(&mut rng, scenes))
                .collect()
        })
        .collect()
}

/// One measured service configuration.
struct ConfigRow {
    name: &'static str,
    cache_budget_bytes: usize,
    max_batch: usize,
    workers: usize,
    wall_ms: f64,
    throughput_rps: f64,
    stats: ServeStats,
}

/// Replays the workload through a fresh service with `cfg`.
fn run_config(
    name: &'static str,
    cfg: ServeConfig,
    registry: &[(String, SceneSource)],
    streams: &[Vec<RenderRequest>],
) -> ConfigRow {
    let service = RenderService::new(cfg.clone(), registry.to_vec());
    let workers = service.workers();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for stream in streams {
            let service = &service;
            scope.spawn(move || {
                for req in stream {
                    service
                        .render_blocking(req.clone())
                        .expect("serve request failed");
                }
            });
        }
    });
    let wall = start.elapsed().as_secs_f64();
    let total: usize = streams.iter().map(Vec::len).sum();
    let stats = service.shutdown();
    assert_eq!(stats.frames as usize, total, "lost frames in {name}");
    ConfigRow {
        name,
        cache_budget_bytes: cfg.cache_budget_bytes,
        max_batch: cfg.max_batch,
        workers,
        wall_ms: wall * 1e3,
        throughput_rps: total as f64 / wall,
        stats,
    }
}

/// Serve-path determinism: a sample of requests rendered through the
/// service must be bit-identical to direct `render_job` calls on the
/// file-loaded scenes — including the posed / overridden / ROI'd ones.
/// Returns the number of frames checked.
fn parity_check(
    registry: &[(String, SceneSource)],
    loaded: &[(String, Arc<Scene>)],
    streams: &[Vec<RenderRequest>],
) -> usize {
    let service = RenderService::new(ServeConfig::default(), registry.to_vec());
    // One plain request per scene id, one heterogeneous request per scene,
    // plus the head of the first stream.
    let mut samples: Vec<RenderRequest> = Vec::new();
    for (id, _) in loaded {
        samples.push(RenderRequest::trajectory(id.clone(), 0.37));
        samples.push(
            RenderRequest::new(id.clone(), ViewSpec::orbit(1.2)).with_options(
                RenderOptions::default()
                    .with_schedule(Schedule::Gscore)
                    .at_resolution(256, 192)
                    .with_roi(Roi::new(32, 24, 128, 96)),
            ),
        );
    }
    samples.extend(streams[0].iter().take(4).cloned());
    let n = samples.len();
    for req in samples {
        let served = service
            .render_blocking(req.clone())
            .expect("parity request");
        let scene = &loaded
            .iter()
            .find(|(id, _)| *id == req.scene)
            .expect("sample scene registered")
            .1;
        let cam = scene
            .resolve_view(&req.view, &req.options)
            .expect("parity request resolves");
        let want = req.options.schedule.renderer().render_job(
            &RenderJob::with_options(&scene.gaussians, &cam, req.options.clone()),
            &mut FrameScratch::new(),
        );
        assert_eq!(
            served.image, want.image,
            "serve path diverged on {} ({:?})",
            req.scene, req.options
        );
        assert_eq!(
            served.stats, want.stats,
            "serve stats diverged on {}",
            req.scene
        );
    }
    n
}

fn json_escape_free(s: &str) -> &str {
    // Ids/names here are ASCII identifiers; keep the writer simple.
    assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut clients = if smoke { 3 } else { 6 };
    let mut per_client = if smoke { 6 } else { 20 };
    let mut out_path = gcc_bench::default_artifact_path("BENCH_serve.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--clients" => {
                clients = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--clients needs a positive integer");
            }
            "--requests" => {
                per_client = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--requests needs a positive integer");
            }
            "--out" => {
                out_path = it.next().expect("--out needs a path").into();
            }
            "--smoke" => {}
            other => panic!(
                "unknown flag {other} (expected --smoke, --clients N, --requests N, --out PATH)"
            ),
        }
    }
    assert!(clients > 0 && per_client > 0, "workload must be non-empty");

    let scenes = scene_set(smoke);
    let dir = std::env::temp_dir().join(format!("gcc_bench_serve_{}", std::process::id()));
    let (registry, loaded) = build_registry(&scenes, &dir);
    let scene_bytes: usize = loaded.iter().map(|(_, s)| s.approx_bytes()).sum();
    let streams = workload(&scenes, clients, per_client, 0x5EC7_E5E5);
    let total_requests = clients * per_client;

    let parity_frames = parity_check(&registry, &loaded, &streams);

    let batched = run_config(
        "batched_lru",
        ServeConfig {
            workers: 0,
            cache_budget_bytes: scene_bytes * 2,
            max_batch: 8,
        },
        &registry,
        &streams,
    );
    let naive = run_config(
        "naive_evict",
        ServeConfig {
            workers: 0,
            cache_budget_bytes: 0,
            max_batch: 1,
        },
        &registry,
        &streams,
    );
    let speedup = batched.throughput_rps / naive.throughput_rps;
    let _ = std::fs::remove_dir_all(&dir);

    let mut table = TablePrinter::new();
    table.row([
        "config",
        "req/s",
        "p50 ms",
        "p95 ms",
        "hit rate",
        "loads",
        "frames/batch",
    ]);
    for row in [&batched, &naive] {
        table.row([
            row.name.to_string(),
            format!("{:.1}", row.throughput_rps),
            format!("{:.2}", row.stats.latency_p50_ms),
            format!("{:.2}", row.stats.latency_p95_ms),
            format!("{:.2}", row.stats.hit_rate()),
            format!("{}", row.stats.loads()),
            format!("{:.2}", row.stats.frames_per_batch()),
        ]);
    }
    table.print();
    let mut sched_table = TablePrinter::new();
    sched_table.row(["schedule", "requests", "frames", "batches"]);
    for (schedule, c) in &batched.stats.per_schedule {
        sched_table.row([
            schedule.name().to_string(),
            c.requests.to_string(),
            c.frames.to_string(),
            c.batches.to_string(),
        ]);
    }
    sched_table.print();
    println!("speedup vs naive: {speedup:.2}x (parity: {parity_frames} frames bit-identical)");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"bench_serve/v2\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"clients\": {clients},\n"));
    json.push_str(&format!("  \"requests_per_client\": {per_client},\n"));
    json.push_str(&format!("  \"total_requests\": {total_requests},\n"));
    json.push_str(&format!("  \"workers\": {},\n", batched.workers));
    json.push_str(&format!("  \"parity_checked_frames\": {parity_frames},\n"));
    json.push_str("  \"parity_ok\": true,\n");
    json.push_str("  \"scenes\": [\n");
    for (i, (id, scene)) in loaded.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"id\": \"{}\", \"gaussians\": {}, \"bytes\": {}, \"format\": \"{}\"}}{}\n",
            json_escape_free(id),
            scene.len(),
            scene.approx_bytes(),
            if scenes[i].json { "json" } else { "binary" },
            if i + 1 == loaded.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"configs\": [\n");
    for (i, row) in [&batched, &naive].into_iter().enumerate() {
        let s = &row.stats;
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"cache_budget_bytes\": {}, \"max_batch\": {}, \
             \"wall_ms\": {:.2}, \"throughput_rps\": {:.3}, \
             \"latency_p50_ms\": {:.3}, \"latency_p95_ms\": {:.3}, \
             \"hit_rate\": {:.4}, \"hits\": {}, \"misses\": {}, \"loads\": {}, \
             \"evictions\": {}, \"frames\": {}, \"batches\": {}, \
             \"frames_per_batch\": {:.3}, \"max_queue_depth\": {},\n",
            row.name,
            row.cache_budget_bytes,
            row.max_batch,
            row.wall_ms,
            row.throughput_rps,
            s.latency_p50_ms,
            s.latency_p95_ms,
            s.hit_rate(),
            s.hits(),
            s.misses(),
            s.loads(),
            s.evictions(),
            s.frames,
            s.batches,
            s.frames_per_batch(),
            s.max_queue_depth,
        ));
        json.push_str("     \"per_schedule\": [");
        for (j, (schedule, c)) in s.per_schedule.iter().enumerate() {
            json.push_str(&format!(
                "{}{{\"schedule\": \"{}\", \"requests\": {}, \"frames\": {}, \"batches\": {}}}",
                if j == 0 { "" } else { ", " },
                json_escape_free(schedule.name()),
                c.requests,
                c.frames,
                c.batches,
            ));
        }
        json.push_str("]}");
        json.push_str(if i == 1 { "\n" } else { ",\n" });
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"speedup_vs_naive\": {speedup:.3}\n"));
    json.push_str("}\n");

    // Self-validate before declaring success: CI keys off the exit code.
    if let Err(e) = gcc_scene::json::parse(&json) {
        eprintln!("bench_serve produced invalid JSON: {e}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("bench_serve could not write {}: {e}", out_path.display());
        std::process::exit(1);
    }
    println!("wrote {}", out_path.display());

    // Full mode is the acceptance run: the cache-hit batched service must
    // at least double naive load-render-evict throughput even on the
    // heterogeneous workload.
    if !smoke && speedup < 2.0 {
        eprintln!("bench_serve: speedup {speedup:.2}x below the 2x acceptance threshold");
        std::process::exit(1);
    }
}
