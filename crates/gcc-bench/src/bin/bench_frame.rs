//! `bench_frame` — the machine-readable frame-time harness behind
//! `BENCH_frame.json`.
//!
//! Renders preset scenes at several scales through both dataflows
//! (standard tile-wise and GCC Gaussian-wise), each under sequential and
//! auto-threaded intra-frame parallelism, and records wall-clock frame
//! times. The output is the start of the repository's perf trajectory:
//! every PR that touches the hot path regenerates the file and compares
//! against the previous run.
//!
//! ```text
//! cargo run --release -p gcc-bench --bin bench_frame            # full sweep
//! cargo run --release -p gcc-bench --bin bench_frame -- --smoke # CI smoke
//! ```
//!
//! Flags: `--smoke` (tiny scene set, 1 rep — CI), `--reps N` (timed
//! repetitions per case, best-of; default 3), `--out PATH` (default
//! `BENCH_frame.json` at the repository root, resolved via
//! [`gcc_bench::default_artifact_path`] so a run from any subdirectory
//! doesn't scatter artifacts). The binary re-parses the JSON it wrote and
//! exits non-zero if the file is invalid, so CI can treat a zero exit as
//! "valid perf record produced". CI compares the record against
//! `ci/bench_baseline.json` with the `perf_gate` binary.

use std::time::Instant;

use gcc_bench::TablePrinter;
use gcc_parallel::{available_threads, Parallelism};
use gcc_render::pipeline::{Frame, FrameScratch, GaussianWiseRenderer, Renderer, StandardRenderer};
use gcc_scene::{Scene, SceneConfig, ScenePreset};

/// One (scene, scale) point of the sweep.
struct Case {
    preset: ScenePreset,
    scale: f32,
}

/// One measured row of the output.
struct Row {
    scene: &'static str,
    scale: f32,
    gaussians: usize,
    width: u32,
    height: u32,
    engine: &'static str,
    parallelism: &'static str,
    threads: usize,
    ms_per_frame: f64,
}

/// The engines of the sweep; [`build_engine`] is the single constructor.
const ENGINES: [&str; 2] = ["standard_frame_engine", "gaussian_wise_frame_engine"];

fn build_engine(engine: &str, parallelism: Parallelism) -> Box<dyn Renderer> {
    match engine {
        "standard_frame_engine" => {
            Box::new(StandardRenderer::reference().with_parallelism(parallelism))
        }
        "gaussian_wise_frame_engine" => {
            Box::new(GaussianWiseRenderer::default().with_parallelism(parallelism))
        }
        other => unreachable!("unknown engine {other}"),
    }
}

/// Best-of-`reps` frame time in milliseconds (one warmup render first).
fn time_frames(scene: &Scene, renderer: &dyn Renderer, reps: usize) -> f64 {
    let cam = scene.default_camera();
    let mut scratch = FrameScratch::new();
    let _warmup: Frame = renderer.render_frame_reusing(&scene.gaussians, &cam, &mut scratch);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let frame = renderer.render_frame_reusing(&scene.gaussians, &cam, &mut scratch);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        // Keep the frame alive through the timer so the render cannot be
        // optimized away.
        assert!(frame.image.width() > 0);
        best = best.min(ms);
    }
    best
}

fn push_json_row(out: &mut String, row: &Row, last: bool) {
    out.push_str(&format!(
        "    {{\"scene\": \"{}\", \"scale\": {}, \"gaussians\": {}, \"width\": {}, \"height\": {}, \"engine\": \"{}\", \"parallelism\": \"{}\", \"threads\": {}, \"ms_per_frame\": {:.4}}}{}\n",
        row.scene,
        row.scale,
        row.gaussians,
        row.width,
        row.height,
        row.engine,
        row.parallelism,
        row.threads,
        row.ms_per_frame,
        if last { "" } else { "," },
    ));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut reps = if smoke { 1 } else { 3 };
    let mut out_path = gcc_bench::default_artifact_path("BENCH_frame.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--reps" => {
                reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps needs a positive integer");
            }
            "--out" => {
                out_path = it.next().expect("--out needs a path").into();
            }
            "--smoke" => {}
            other => panic!("unknown flag {other} (expected --smoke, --reps N, --out PATH)"),
        }
    }
    assert!(reps > 0, "--reps must be positive");

    let cases: Vec<Case> = if smoke {
        vec![
            Case {
                preset: ScenePreset::Lego,
                scale: 0.05,
            },
            Case {
                preset: ScenePreset::Train,
                scale: 0.02,
            },
        ]
    } else {
        vec![
            Case {
                preset: ScenePreset::Lego,
                scale: 0.25,
            },
            Case {
                preset: ScenePreset::Lego,
                scale: 1.0,
            },
            Case {
                preset: ScenePreset::Train,
                scale: 0.05,
            },
            Case {
                preset: ScenePreset::Train,
                scale: 0.2,
            },
        ]
    };

    let auto_threads = available_threads();
    let mut rows: Vec<Row> = Vec::new();
    let mut table = TablePrinter::new();
    table.row(["scene", "scale", "gaussians", "engine", "par", "ms/frame"]);

    for case in &cases {
        let scene = case.preset.build(&SceneConfig::with_scale(case.scale));
        for engine in ENGINES {
            for (par_name, par, threads) in [
                ("sequential", Parallelism::Sequential, 1),
                ("auto", Parallelism::Auto, auto_threads),
            ] {
                let renderer = build_engine(engine, par);
                let ms = time_frames(&scene, renderer.as_ref(), reps);
                table.row([
                    scene.name.clone(),
                    format!("{}", case.scale),
                    format!("{}", scene.len()),
                    engine.to_string(),
                    par_name.to_string(),
                    format!("{ms:.3}"),
                ]);
                rows.push(Row {
                    scene: case.preset.params().name,
                    scale: case.scale,
                    gaussians: scene.len(),
                    width: scene.resolution.0,
                    height: scene.resolution.1,
                    engine,
                    parallelism: par_name,
                    threads,
                    ms_per_frame: ms,
                });
            }
        }
    }
    table.print();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"bench_frame/v1\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!("  \"host_threads\": {auto_threads},\n"));
    json.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        push_json_row(&mut json, row, i + 1 == rows.len());
    }
    json.push_str("  ]\n}\n");

    // Self-validate before declaring success: CI keys off the exit code.
    if let Err(e) = gcc_scene::json::parse(&json) {
        eprintln!("bench_frame produced invalid JSON: {e}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("bench_frame could not write {}: {e}", out_path.display());
        std::process::exit(1);
    }
    println!("wrote {} ({} results)", out_path.display(), rows.len());
}
