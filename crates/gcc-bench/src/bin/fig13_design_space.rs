//! Regenerates paper Fig. 13: design-space exploration on the Train scene —
//! (a) image-buffer capacity (32 KB – 8 MB) and (b) alpha/blending array
//! size, both scored by area-normalized throughput (FPS/mm²) and
//! area-normalized energy (mJ·mm², lower = better).
//!
//! Paper conclusions: 128 KB image buffer and the 8×8 array are the sweet
//! spots.
//!
//! Usage: `cargo run --release -p gcc-bench --bin fig13_design_space`

use gcc_bench::{bench_scene, TablePrinter};
use gcc_scene::ScenePreset;
use gcc_sim::area::{alpha_blend_area_mm2, gcc_summary, image_buffer_area_mm2};
use gcc_sim::gcc::{simulate_gcc, GccSimConfig};

fn main() {
    let scene = bench_scene(ScenePreset::Train);
    let cam = scene.default_camera();
    let base_area = gcc_summary().area_mm2;

    println!("=== Figure 13(a): image buffer size sweep (Train) ===\n");
    let mut ta = TablePrinter::new();
    ta.row(["Buffer", "SubView", "FPS", "Area(mm2)", "FPS/mm2", "mJ*mm2"]);
    for &kb in &[32.0f64, 128.0, 512.0, 2048.0, 8192.0] {
        let mut cfg = GccSimConfig {
            image_buffer_kb: kb,
            subview_override: None,
            ..GccSimConfig::default()
        };
        // Half-resolution repro: scale the paper's sub-view operating
        // point with the resolution (DESIGN.md §7).
        cfg.subview_override = Some((cfg.subview_edge() / 2).max(16));
        let (r, _) = simulate_gcc(&scene.gaussians, &cam, &cfg, &scene.name);
        let area = base_area - image_buffer_area_mm2(128.0) + image_buffer_area_mm2(kb);
        ta.row([
            format!("{}KB", kb),
            format!("{}", cfg.subview_override.unwrap()),
            format!("{:.0}", r.fps()),
            format!("{:.2}", area),
            format!("{:.0}", r.fps() / area),
            format!("{:.2}", r.energy_per_frame_mj() * area),
        ]);
    }
    ta.print();

    println!("\n=== Figure 13(b): alpha & blending array size sweep (Train) ===\n");
    let mut tb = TablePrinter::new();
    tb.row([
        "ArrayEdge",
        "Lanes",
        "FPS",
        "Area(mm2)",
        "FPS/mm2",
        "mJ*mm2",
    ]);
    for &edge in &[4u32, 8, 16, 32, 64] {
        let cfg = GccSimConfig {
            block_edge: edge,
            ..GccSimConfig::default()
        };
        let (r, _) = simulate_gcc(&scene.gaussians, &cam, &cfg, &scene.name);
        let lanes = edge * edge;
        let area = base_area - alpha_blend_area_mm2(64) + alpha_blend_area_mm2(lanes);
        tb.row([
            format!("{edge}x{edge}"),
            format!("{lanes}"),
            format!("{:.0}", r.fps()),
            format!("{:.2}", area),
            format!("{:.0}", r.fps() / area),
            format!("{:.2}", r.energy_per_frame_mj() * area),
        ]);
    }
    tb.print();
    println!("\n(paper: 128 KB buffer and the 8x8 array maximize FPS/mm2)");
}
