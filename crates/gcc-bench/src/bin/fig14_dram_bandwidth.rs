//! Regenerates paper Fig. 14: throughput of GCC and GSCore on the Train
//! scene under increasing DRAM bandwidth (LPDDR4-3200 → LPDDR6-14400 plus
//! intermediate points).
//!
//! Paper shape: both designs scale with bandwidth at first; GCC plateaus
//! once it becomes compute-bound (its off-chip traffic is far smaller),
//! while GSCore keeps scaling far beyond.
//!
//! Usage: `cargo run --release -p gcc-bench --bin fig14_dram_bandwidth`

use gcc_bench::{bench_scene, TablePrinter};
use gcc_scene::ScenePreset;
use gcc_sim::dram::DramModel;
use gcc_sim::gcc::{simulate_gcc, GccSimConfig};
use gcc_sim::gscore::{simulate_gscore, GscoreConfig};

fn main() {
    let scene = bench_scene(ScenePreset::Train);
    let cam = scene.default_camera();

    println!("=== Figure 14: throughput vs DRAM bandwidth (Train) ===\n");
    let mut t = TablePrinter::new();
    t.row(["DRAM", "BW(GB/s)", "GSCore FPS", "GCC FPS", "GCC bound"]);

    let mut sweep = DramModel::sweep();
    sweep.push(DramModel::custom(281.6));
    sweep.push(DramModel::custom(409.6));
    for dram in sweep {
        let gs_cfg = GscoreConfig {
            dram: dram.clone(),
            ..GscoreConfig::default()
        };
        let gc_cfg = GccSimConfig {
            dram: dram.clone(),
            ..GccSimConfig::default()
        };
        let (gs, _) = simulate_gscore(&scene.gaussians, &cam, &gs_cfg, &scene.name);
        let (gc, _) = simulate_gcc(&scene.gaussians, &cam, &gc_cfg, &scene.name);
        let bound = if gc.phases.iter().any(gcc_sim::PhaseTiming::memory_bound) {
            "memory"
        } else {
            "compute"
        };
        t.row([
            dram.name.clone(),
            format!("{:.1}", dram.bandwidth_gbps),
            format!("{:.0}", gs.fps()),
            format!("{:.0}", gc.fps()),
            bound.to_string(),
        ]);
    }
    t.print();
    println!("\n(paper: GCC plateaus at high bandwidth — it becomes compute-bound — while");
    println!(" GSCore, with far more off-chip traffic, keeps scaling)");
}
