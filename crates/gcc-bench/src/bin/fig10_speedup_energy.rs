//! Regenerates paper Fig. 10: area-normalized speedup (a) and energy
//! efficiency (b) of GCC over GSCore on the six scenes.
//!
//! Paper: speedups 4.27×(Playroom)–6.22×(Lego), geomean 5.24×; energy
//! efficiency 3.05–3.72×, geomean 3.35×.
//!
//! Usage: `cargo run --release -p gcc-bench --bin fig10_speedup_energy`

use gcc_bench::{bench_scene, geomean, TablePrinter};
use gcc_scene::ALL_PRESETS;
use gcc_sim::gcc::{simulate_gcc, GccSimConfig};
use gcc_sim::gscore::{simulate_gscore, GscoreConfig};

fn main() {
    let paper_speedup = [5.69, 6.22, 5.91, 5.00, 4.27, 4.64];
    let paper_energy = [3.51, 3.17, 3.17, 3.05, 3.51, 3.72];

    let mut t = TablePrinter::new();
    t.row([
        "Scene",
        "GSCoreFPS",
        "GCCFPS",
        "Speedup/mm2",
        "Paper",
        "EnergyEff/mm2",
        "Paper",
        "GSCore-pre%",
    ]);
    let mut speedups = Vec::new();
    let mut energies = Vec::new();

    for (i, preset) in ALL_PRESETS.iter().enumerate() {
        let scene = bench_scene(*preset);
        let cam = scene.default_camera();
        let (gs, _) = simulate_gscore(
            &scene.gaussians,
            &cam,
            &GscoreConfig::default(),
            &scene.name,
        );
        let (gc, _) = simulate_gcc(
            &scene.gaussians,
            &cam,
            &GccSimConfig::default(),
            &scene.name,
        );

        // Area-normalized throughput ratio (FPS/mm²), the paper's metric.
        let speedup = gc.fps_per_mm2() / gs.fps_per_mm2();
        // Area-normalized energy efficiency: frames per joule per mm².
        let eff = (1.0 / gc.energy_per_frame_mj() / gc.area_mm2)
            / (1.0 / gs.energy_per_frame_mj() / gs.area_mm2);
        speedups.push(speedup);
        energies.push(eff);

        t.row([
            scene.name.clone(),
            format!("{:.1}", gs.fps()),
            format!("{:.1}", gc.fps()),
            format!("{:.2}x", speedup),
            format!("{:.2}x", paper_speedup[i]),
            format!("{:.2}x", eff),
            format!("{:.2}x", paper_energy[i]),
            format!("{:.0}%", 100.0 * gs.phase_fraction("preprocess")),
        ]);
    }
    t.row([
        "Geomean".to_string(),
        String::new(),
        String::new(),
        format!("{:.2}x", geomean(&speedups)),
        "5.24x".to_string(),
        format!("{:.2}x", geomean(&energies)),
        "3.35x".to_string(),
        String::new(),
    ]);

    println!("=== Figure 10: area-normalized speedup & energy efficiency ===\n");
    t.print();
    println!("\n(GSCore preprocess share target: ~40% of runtime, paper §1)");
}
