//! Regenerates paper Fig. 15 (§6 Discussion): per-frame execution-time
//! breakdown of the standard dataflow versus the GCC dataflow on GPUs
//! (RTX 3090, Jetson Xavier) and on the accelerators, normalized to the
//! standard dataflow within each platform.
//!
//! Paper findings encoded/measured here:
//! 1. On GPUs, rendering dominates, so GCC's dataflow gains little —
//!    and its Gaussian-parallel blending (atomics) *increases* render
//!    time.
//! 2. On small-SRAM accelerators, data movement dominates and the GCC
//!    dataflow wins decisively.
//!
//! Usage: `cargo run --release -p gcc-bench --bin fig15_gpu_dataflow`

use gcc_bench::{bench_scene, TablePrinter};
use gcc_render::gaussian_wise::{render_gaussian_wise, GaussianWiseConfig};
use gcc_render::standard::{render_standard, StandardConfig};
use gcc_scene::ScenePreset;
use gcc_sim::gcc::{simulate_gcc, GccSimConfig};
use gcc_sim::gpu::{gcc_dataflow_cost, standard_dataflow_cost, GpuPlatform};
use gcc_sim::gscore::{simulate_gscore, GscoreConfig};

fn main() {
    let scenes = [
        ScenePreset::Palace,
        ScenePreset::Train,
        ScenePreset::Drjohnson,
    ];
    let gpus = [GpuPlatform::rtx3090(), GpuPlatform::jetson_xavier()];

    println!("=== Figure 15: dataflow time breakdown, normalized per platform ===\n");
    let mut t = TablePrinter::new();
    t.row([
        "Platform", "Scene", "Dataflow", "Pre%", "Dup%", "Sort%", "Render%", "Total",
    ]);

    for preset in scenes {
        let scene = bench_scene(preset);
        let cam = scene.default_camera();
        let std_out = render_standard(&scene.gaussians, &cam, &StandardConfig::gscore());
        let gw_cfg = GaussianWiseConfig {
            subview: Some(64),
            ..GaussianWiseConfig::default()
        };
        let gw_out = render_gaussian_wise(&scene.gaussians, &cam, &gw_cfg);

        for gpu in &gpus {
            let std_b = standard_dataflow_cost(&std_out.stats, gpu);
            let gcc_b = gcc_dataflow_cost(&gw_out.stats, gpu);
            let base = std_b.total_ms();
            for (name, b) in [("standard", &std_b), ("GCC", &gcc_b)] {
                t.row([
                    gpu.name.clone(),
                    scene.name.clone(),
                    name.to_string(),
                    format!("{:.0}%", 100.0 * b.preprocess_ms / base),
                    format!("{:.0}%", 100.0 * b.duplicate_ms / base),
                    format!("{:.0}%", 100.0 * b.sort_ms / base),
                    format!("{:.0}%", 100.0 * b.render_ms / base),
                    format!("{:.2} ({:.0} FPS)", b.total_ms() / base, b.fps()),
                ]);
            }
        }

        // Accelerator column: GSCore (standard) vs GCC, from the cycle
        // models, sliced into the same categories.
        let (gs, _) = simulate_gscore(
            &scene.gaussians,
            &cam,
            &GscoreConfig::default(),
            &scene.name,
        );
        let (gc, _) = simulate_gcc(
            &scene.gaussians,
            &cam,
            &GccSimConfig::default(),
            &scene.name,
        );
        let base = gs.total_cycles;
        let gs_pre = gs.phases[0].cycles();
        let gs_sort = gs.phases[1].cycles();
        let gs_render = gs.phases[2].cycles();
        t.row([
            "GSCore/GCC".to_string(),
            scene.name.clone(),
            "standard".to_string(),
            format!("{:.0}%", 100.0 * gs_pre / base),
            "0%".to_string(),
            format!("{:.0}%", 100.0 * gs_sort / base),
            format!("{:.0}%", 100.0 * gs_render / base),
            format!("1.00 ({:.0} FPS)", gs.fps()),
        ]);
        let gc_group = gc.phases[0].cycles();
        let gc_render = gc.phases[1].cycles();
        t.row([
            "GSCore/GCC".to_string(),
            scene.name.clone(),
            "GCC".to_string(),
            format!("{:.0}%", 100.0 * gc_group / base),
            "0%".to_string(),
            "0%".to_string(),
            format!("{:.0}%", 100.0 * gc_render / base),
            format!("{:.2} ({:.0} FPS)", gc.total_cycles / base, gc.fps()),
        ]);
    }
    t.print();
    println!("\n(paper: on GPUs the GCC dataflow helps little — atomics inflate rendering —");
    println!(" while on the accelerator it cuts total time by 3-6x)");
}
