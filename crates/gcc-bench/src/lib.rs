//! Shared harness utilities for the table/figure regeneration binaries.
//!
//! Every binary accepts the `GCC_SCENE_SCALE` environment variable
//! (default noted per binary) so experiments can be run larger or smaller
//! than the default repro scale; see `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perf_gate;

use gcc_scene::{Scene, SceneConfig, ScenePreset};

/// Default scene scale for the bench binaries (relative to the presets'
/// base counts, themselves ~1/10 of the paper's model sizes at 1/7 the
/// paper's pixel count — the calibrated repro scale of `DESIGN.md` §7).
pub const DEFAULT_BENCH_SCALE: f32 = 1.0;

/// Builds a preset scene at the env-configured scale.
pub fn bench_scene(preset: ScenePreset) -> Scene {
    preset.build(&SceneConfig::from_env(DEFAULT_BENCH_SCALE))
}

/// Builds a preset scene at an explicit default scale (env still wins).
pub fn bench_scene_scaled(preset: ScenePreset, default_scale: f32) -> Scene {
    preset.build(&SceneConfig::from_env(default_scale))
}

/// Default output path for a bench artifact (`BENCH_frame.json`,
/// `BENCH_serve.json`, …): the repository root, resolved from this
/// crate's compile-time manifest directory, so the harnesses write the
/// same file no matter which subdirectory they are launched from. Falls
/// back to the working directory when the build tree no longer exists
/// (e.g. a binary copied to another machine) — CI and scripts that need
/// full control pass `--out` instead.
pub fn default_artifact_path(file_name: &str) -> std::path::PathBuf {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    if root.join("Cargo.toml").is_file() {
        root.canonicalize().unwrap_or(root).join(file_name)
    } else {
        std::path::PathBuf::from(file_name)
    }
}

/// Simple fixed-width table printer for bench output.
#[derive(Debug, Default)]
pub struct TablePrinter {
    rows: Vec<Vec<String>>,
}

impl TablePrinter {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a row of cells.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.rows.iter().map(Vec::len).max().unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{:>w$}", c, w = widths[i]));
            }
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a count with thousands separators.
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Geometric mean of a sequence of positive values.
///
/// # Panics
///
/// Panics if any value is non-positive.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean needs positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_count_inserts_separators() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1_000), "1,000");
        assert_eq!(fmt_count(1_234_567), "1,234,567");
    }

    #[test]
    fn geomean_matches_hand_computation() {
        let g = geomean(&[2.0, 8.0]);
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    fn artifact_path_is_anchored_at_the_workspace_root() {
        // In the build tree the path must resolve to the workspace root
        // (where ROADMAP.md lives), independent of the working directory.
        let p = default_artifact_path("BENCH_test.json");
        assert!(p.is_absolute(), "{p:?} not anchored");
        assert!(p.parent().unwrap().join("ROADMAP.md").is_file());
        assert_eq!(p.file_name().unwrap(), "BENCH_test.json");
    }

    #[test]
    fn table_aligns_columns() {
        let mut t = TablePrinter::new();
        t.row(["a", "bbbb"]).row(["cc", "d"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0].len(), lines[1].len());
    }
}
