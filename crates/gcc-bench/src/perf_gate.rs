//! Comparison logic of the CI perf gate: `BENCH_frame.json` (current run)
//! vs `ci/bench_baseline.json` (committed reference), cell by cell.
//!
//! A *cell* is one `(scene, scale, engine, parallelism)` combination; the
//! gate fails when any cell's `ms_per_frame` exceeds its baseline by more
//! than the tolerance, or when a baseline cell is missing from the
//! current run (coverage must not silently shrink). Cells new in the
//! current run are reported but do not fail the gate, so adding sweep
//! points doesn't require touching the baseline in the same PR.
//!
//! The logic lives in the library (not the `perf_gate` binary) so the
//! gate's fail-on-regression behavior is pinned by unit tests — CI runs
//! the same code the tests cover.

use gcc_scene::json::{self, Value};

/// One measured cell of a `bench_frame` record.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCell {
    /// Scene name.
    pub scene: String,
    /// Scene count scale.
    pub scale: f32,
    /// Engine id.
    pub engine: String,
    /// Parallelism label (`sequential` / `auto`).
    pub parallelism: String,
    /// Measured milliseconds per frame.
    pub ms_per_frame: f64,
}

impl BenchCell {
    /// Stable identity of the cell across runs.
    pub fn key(&self) -> String {
        format!(
            "{}@{}/{}/{}",
            self.scene, self.scale, self.engine, self.parallelism
        )
    }
}

/// Parses the `bench_frame/v1` schema into its cells.
///
/// # Errors
///
/// Returns a message for malformed JSON or a record missing required
/// fields.
pub fn parse_bench_cells(text: &str) -> Result<Vec<BenchCell>, String> {
    let doc = json::parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing 'schema'")?;
    if schema != "bench_frame/v1" {
        return Err(format!("unexpected schema '{schema}'"));
    }
    let results = doc
        .get("results")
        .and_then(Value::as_arr)
        .ok_or("missing 'results' array")?;
    let mut cells = Vec::with_capacity(results.len());
    for (i, r) in results.iter().enumerate() {
        let str_field = |k: &str| -> Result<String, String> {
            r.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or(format!("result {i}: missing string '{k}'"))
        };
        let num_field = |k: &str| -> Result<f32, String> {
            r.get(k)
                .and_then(Value::as_f32)
                .ok_or(format!("result {i}: missing number '{k}'"))
        };
        let cell = BenchCell {
            scene: str_field("scene")?,
            scale: num_field("scale")?,
            engine: str_field("engine")?,
            parallelism: str_field("parallelism")?,
            ms_per_frame: f64::from(num_field("ms_per_frame")?),
        };
        if !(cell.ms_per_frame.is_finite() && cell.ms_per_frame > 0.0) {
            return Err(format!(
                "result {i}: non-positive ms_per_frame {}",
                cell.ms_per_frame
            ));
        }
        cells.push(cell);
    }
    if cells.is_empty() {
        return Err("empty 'results' array".into());
    }
    Ok(cells)
}

/// One baseline-vs-current cell comparison.
#[derive(Debug, Clone)]
pub struct CellComparison {
    /// Cell identity ([`BenchCell::key`]).
    pub key: String,
    /// Baseline milliseconds per frame.
    pub baseline_ms: f64,
    /// Current milliseconds per frame.
    pub current_ms: f64,
    /// `current / baseline` (> 1 is slower).
    pub ratio: f64,
    /// `true` when the slowdown exceeds the tolerance.
    pub regressed: bool,
}

/// Full gate outcome.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Relative tolerance the gate ran with (0.25 = fail beyond +25%).
    pub tolerance: f64,
    /// Matched cells, in baseline order.
    pub cells: Vec<CellComparison>,
    /// Baseline cells absent from the current run (fails the gate).
    pub missing_in_current: Vec<String>,
    /// Current cells absent from the baseline (informational).
    pub new_in_current: Vec<String>,
}

impl GateReport {
    /// `true` when no cell regressed and no baseline coverage was lost.
    pub fn passed(&self) -> bool {
        self.missing_in_current.is_empty() && self.cells.iter().all(|c| !c.regressed)
    }

    /// Human-readable per-cell report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.cells {
            out.push_str(&format!(
                "{} {:>10.4} ms -> {:>10.4} ms  ({:+.1}%){}\n",
                c.key,
                c.baseline_ms,
                c.current_ms,
                (c.ratio - 1.0) * 100.0,
                if c.regressed { "  REGRESSION" } else { "" },
            ));
        }
        for k in &self.missing_in_current {
            out.push_str(&format!("{k}  MISSING from current run\n"));
        }
        for k in &self.new_in_current {
            out.push_str(&format!("{k}  new (not in baseline)\n"));
        }
        out.push_str(&format!(
            "perf gate: {} (tolerance +{:.0}%)\n",
            if self.passed() { "PASS" } else { "FAIL" },
            self.tolerance * 100.0
        ));
        out
    }
}

/// Compares two `bench_frame` records cell-by-cell.
///
/// # Errors
///
/// Propagates parse errors from either record and rejects a non-finite
/// or negative tolerance.
pub fn compare(
    baseline_text: &str,
    current_text: &str,
    tolerance: f64,
) -> Result<GateReport, String> {
    if !(tolerance.is_finite() && tolerance >= 0.0) {
        return Err(format!("invalid tolerance {tolerance}"));
    }
    let baseline = parse_bench_cells(baseline_text).map_err(|e| format!("baseline: {e}"))?;
    let current = parse_bench_cells(current_text).map_err(|e| format!("current: {e}"))?;
    let mut cells = Vec::new();
    let mut missing = Vec::new();
    for b in &baseline {
        match current.iter().find(|c| c.key() == b.key()) {
            Some(c) => {
                let ratio = c.ms_per_frame / b.ms_per_frame;
                cells.push(CellComparison {
                    key: b.key(),
                    baseline_ms: b.ms_per_frame,
                    current_ms: c.ms_per_frame,
                    ratio,
                    regressed: ratio > 1.0 + tolerance,
                });
            }
            None => missing.push(b.key()),
        }
    }
    let new_in_current = current
        .iter()
        .filter(|c| !baseline.iter().any(|b| b.key() == c.key()))
        .map(BenchCell::key)
        .collect();
    Ok(GateReport {
        tolerance,
        cells,
        missing_in_current: missing,
        new_in_current,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(cells: &[(&str, f32, &str, &str, f64)]) -> String {
        let mut out = String::from(
            "{\"schema\": \"bench_frame/v1\", \"smoke\": true, \"reps\": 1, \
             \"host_threads\": 1, \"results\": [\n",
        );
        for (i, (scene, scale, engine, par, ms)) in cells.iter().enumerate() {
            out.push_str(&format!(
                "{{\"scene\": \"{scene}\", \"scale\": {scale}, \"gaussians\": 10, \
                 \"width\": 8, \"height\": 8, \"engine\": \"{engine}\", \
                 \"parallelism\": \"{par}\", \"threads\": 1, \"ms_per_frame\": {ms}}}{}",
                if i + 1 == cells.len() { "\n" } else { ",\n" }
            ));
        }
        out.push_str("]}");
        out
    }

    fn baseline() -> String {
        record(&[
            ("Lego", 0.05, "standard_frame_engine", "sequential", 10.0),
            ("Lego", 0.05, "standard_frame_engine", "auto", 4.0),
            (
                "Train",
                0.02,
                "gaussian_wise_frame_engine",
                "sequential",
                20.0,
            ),
        ])
    }

    #[test]
    fn identical_records_pass() {
        let report = compare(&baseline(), &baseline(), 0.25).unwrap();
        assert!(report.passed());
        assert_eq!(report.cells.len(), 3);
        assert!(report.missing_in_current.is_empty());
        assert!(report.new_in_current.is_empty());
        assert!(report.render().contains("PASS"));
    }

    #[test]
    fn inflated_timing_fails_the_gate_and_names_the_cell() {
        // The acceptance check: an artificially inflated record must trip
        // the gate.
        let current = record(&[
            ("Lego", 0.05, "standard_frame_engine", "sequential", 10.0),
            ("Lego", 0.05, "standard_frame_engine", "auto", 4.0),
            (
                "Train",
                0.02,
                "gaussian_wise_frame_engine",
                "sequential",
                31.0,
            ),
        ]);
        let report = compare(&baseline(), &current, 0.25).unwrap();
        assert!(!report.passed());
        let bad: Vec<&CellComparison> = report.cells.iter().filter(|c| c.regressed).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(
            bad[0].key,
            "Train@0.02/gaussian_wise_frame_engine/sequential"
        );
        assert!((bad[0].ratio - 1.55).abs() < 1e-9);
        assert!(report.render().contains("REGRESSION"));
        assert!(report.render().contains("FAIL"));
    }

    #[test]
    fn slowdown_within_tolerance_passes() {
        let current = record(&[
            ("Lego", 0.05, "standard_frame_engine", "sequential", 12.4),
            ("Lego", 0.05, "standard_frame_engine", "auto", 4.9),
            (
                "Train",
                0.02,
                "gaussian_wise_frame_engine",
                "sequential",
                24.9,
            ),
        ]);
        assert!(compare(&baseline(), &current, 0.25).unwrap().passed());
        // The same run fails under a tighter tolerance.
        assert!(!compare(&baseline(), &current, 0.10).unwrap().passed());
    }

    #[test]
    fn speedups_always_pass() {
        let current = record(&[
            ("Lego", 0.05, "standard_frame_engine", "sequential", 1.0),
            ("Lego", 0.05, "standard_frame_engine", "auto", 0.4),
            (
                "Train",
                0.02,
                "gaussian_wise_frame_engine",
                "sequential",
                2.0,
            ),
        ]);
        let report = compare(&baseline(), &current, 0.0).unwrap();
        assert!(report.passed());
        assert!(report.cells.iter().all(|c| c.ratio < 1.0 + 1e-12));
    }

    #[test]
    fn missing_baseline_cell_fails_new_cell_does_not() {
        let current = record(&[
            ("Lego", 0.05, "standard_frame_engine", "sequential", 10.0),
            ("Lego", 0.05, "standard_frame_engine", "auto", 4.0),
        ]);
        let report = compare(&baseline(), &current, 0.25).unwrap();
        assert!(!report.passed());
        assert_eq!(report.missing_in_current.len(), 1);

        let current = record(&[
            ("Lego", 0.05, "standard_frame_engine", "sequential", 10.0),
            ("Lego", 0.05, "standard_frame_engine", "auto", 4.0),
            (
                "Train",
                0.02,
                "gaussian_wise_frame_engine",
                "sequential",
                20.0,
            ),
            ("Truck", 0.02, "standard_frame_engine", "sequential", 9.0),
        ]);
        let report = compare(&baseline(), &current, 0.25).unwrap();
        assert!(report.passed());
        assert_eq!(
            report.new_in_current,
            vec!["Truck@0.02/standard_frame_engine/sequential".to_string()]
        );
    }

    #[test]
    fn malformed_records_are_errors() {
        assert!(compare("not json", &baseline(), 0.25).is_err());
        assert!(compare(&baseline(), "{\"schema\": \"bench_frame/v1\"}", 0.25).is_err());
        let wrong_schema = baseline().replace("bench_frame/v1", "bench_frame/v9");
        assert!(compare(&wrong_schema, &baseline(), 0.25).is_err());
        let empty = record(&[]).replace("[\n]", "[]");
        assert!(parse_bench_cells(&empty).is_err());
        assert!(compare(&baseline(), &baseline(), f64::NAN).is_err());
        assert!(compare(&baseline(), &baseline(), -0.1).is_err());
    }

    #[test]
    fn zero_ms_cells_are_rejected_at_parse() {
        let zero = record(&[("Lego", 0.05, "standard_frame_engine", "sequential", 0.0)]);
        assert!(parse_bench_cells(&zero).is_err());
    }
}
