//! Comparison logic of the CI perf gate: `BENCH_frame.json` (current run)
//! vs `ci/bench_baseline.json` (committed reference), cell by cell.
//!
//! A *cell* is one `(scene, scale, engine, parallelism)` combination; the
//! gate fails when any cell's `ms_per_frame` exceeds its baseline by more
//! than the tolerance, or when a baseline cell is missing from the
//! current run (coverage must not silently shrink). Cells new in the
//! current run are reported but do not fail the gate, so adding sweep
//! points doesn't require touching the baseline in the same PR.
//!
//! The logic lives in the library (not the `perf_gate` binary) so the
//! gate's fail-on-regression behavior is pinned by unit tests — CI runs
//! the same code the tests cover.

use gcc_scene::json::{self, Value};

/// One measured cell of a `bench_frame` record.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCell {
    /// Scene name.
    pub scene: String,
    /// Scene count scale.
    pub scale: f32,
    /// Engine id.
    pub engine: String,
    /// Parallelism label (`sequential` / `auto`).
    pub parallelism: String,
    /// Measured milliseconds per frame.
    pub ms_per_frame: f64,
}

impl BenchCell {
    /// Stable identity of the cell across runs.
    pub fn key(&self) -> String {
        format!(
            "{}@{}/{}/{}",
            self.scene, self.scale, self.engine, self.parallelism
        )
    }
}

/// Parses the `bench_frame/v1` schema into its cells.
///
/// # Errors
///
/// Returns a message for malformed JSON or a record missing required
/// fields.
pub fn parse_bench_cells(text: &str) -> Result<Vec<BenchCell>, String> {
    let doc = json::parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing 'schema'")?;
    if schema != "bench_frame/v1" {
        return Err(format!("unexpected schema '{schema}'"));
    }
    let results = doc
        .get("results")
        .and_then(Value::as_arr)
        .ok_or("missing 'results' array")?;
    let mut cells = Vec::with_capacity(results.len());
    for (i, r) in results.iter().enumerate() {
        let str_field = |k: &str| -> Result<String, String> {
            r.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or(format!("result {i}: missing string '{k}'"))
        };
        let num_field = |k: &str| -> Result<f32, String> {
            r.get(k)
                .and_then(Value::as_f32)
                .ok_or(format!("result {i}: missing number '{k}'"))
        };
        let cell = BenchCell {
            scene: str_field("scene")?,
            scale: num_field("scale")?,
            engine: str_field("engine")?,
            parallelism: str_field("parallelism")?,
            ms_per_frame: f64::from(num_field("ms_per_frame")?),
        };
        if !(cell.ms_per_frame.is_finite() && cell.ms_per_frame > 0.0) {
            return Err(format!(
                "result {i}: non-positive ms_per_frame {}",
                cell.ms_per_frame
            ));
        }
        cells.push(cell);
    }
    if cells.is_empty() {
        return Err("empty 'results' array".into());
    }
    Ok(cells)
}

/// One baseline-vs-current cell comparison.
#[derive(Debug, Clone)]
pub struct CellComparison {
    /// Cell identity ([`BenchCell::key`]).
    pub key: String,
    /// Baseline milliseconds per frame.
    pub baseline_ms: f64,
    /// Current milliseconds per frame.
    pub current_ms: f64,
    /// `current / baseline` (> 1 is slower).
    pub ratio: f64,
    /// `true` when the slowdown exceeds the tolerance.
    pub regressed: bool,
}

/// Full gate outcome.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Relative tolerance the gate ran with (0.25 = fail beyond +25%).
    pub tolerance: f64,
    /// Matched cells, in baseline order.
    pub cells: Vec<CellComparison>,
    /// Baseline cells absent from the current run (fails the gate).
    pub missing_in_current: Vec<String>,
    /// Current cells absent from the baseline (informational).
    pub new_in_current: Vec<String>,
}

impl GateReport {
    /// `true` when no cell regressed and no baseline coverage was lost.
    pub fn passed(&self) -> bool {
        self.missing_in_current.is_empty() && self.cells.iter().all(|c| !c.regressed)
    }

    /// One-line failure summaries, one per regressed cell: the offending
    /// cell's baseline and current milliseconds side by side plus the
    /// percentage delta against the tolerance. Empty when nothing
    /// regressed. These are the lines a CI log reader needs first, so
    /// [`Self::render`] repeats them in a block right above the verdict.
    pub fn regression_lines(&self) -> Vec<String> {
        self.cells
            .iter()
            .filter(|c| c.regressed)
            .map(|c| {
                format!(
                    "REGRESSED {}: baseline {:.4} ms vs current {:.4} ms ({:+.1}% > +{:.0}% tolerated)",
                    c.key,
                    c.baseline_ms,
                    c.current_ms,
                    (c.ratio - 1.0) * 100.0,
                    self.tolerance * 100.0,
                )
            })
            .collect()
    }

    /// Human-readable per-cell report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.cells {
            out.push_str(&format!(
                "{} {:>10.4} ms -> {:>10.4} ms  ({:+.1}%){}\n",
                c.key,
                c.baseline_ms,
                c.current_ms,
                (c.ratio - 1.0) * 100.0,
                if c.regressed { "  REGRESSION" } else { "" },
            ));
        }
        for k in &self.missing_in_current {
            out.push_str(&format!("{k}  MISSING from current run\n"));
        }
        for k in &self.new_in_current {
            out.push_str(&format!("{k}  new (not in baseline)\n"));
        }
        for line in self.regression_lines() {
            out.push_str(&line);
            out.push('\n');
        }
        out.push_str(&format!(
            "perf gate: {} (tolerance +{:.0}%)\n",
            if self.passed() { "PASS" } else { "FAIL" },
            self.tolerance * 100.0
        ));
        out
    }
}

/// Compares two `bench_frame` records cell-by-cell.
///
/// # Errors
///
/// Propagates parse errors from either record and rejects a non-finite
/// or negative tolerance.
pub fn compare(
    baseline_text: &str,
    current_text: &str,
    tolerance: f64,
) -> Result<GateReport, String> {
    if !(tolerance.is_finite() && tolerance >= 0.0) {
        return Err(format!("invalid tolerance {tolerance}"));
    }
    let baseline = parse_bench_cells(baseline_text).map_err(|e| format!("baseline: {e}"))?;
    let current = parse_bench_cells(current_text).map_err(|e| format!("current: {e}"))?;
    let mut cells = Vec::new();
    let mut missing = Vec::new();
    for b in &baseline {
        match current.iter().find(|c| c.key() == b.key()) {
            Some(c) => {
                let ratio = c.ms_per_frame / b.ms_per_frame;
                cells.push(CellComparison {
                    key: b.key(),
                    baseline_ms: b.ms_per_frame,
                    current_ms: c.ms_per_frame,
                    ratio,
                    regressed: ratio > 1.0 + tolerance,
                });
            }
            None => missing.push(b.key()),
        }
    }
    let new_in_current = current
        .iter()
        .filter(|c| !baseline.iter().any(|b| b.key() == c.key()))
        .map(BenchCell::key)
        .collect();
    Ok(GateReport {
        tolerance,
        cells,
        missing_in_current: missing,
        new_in_current,
    })
}

/// Chaos-phase summary of a record produced by `bench_serve --chaos`.
/// When present, the gate requires the storm to have resolved cleanly:
/// a stranded request or a worker lost for good fails the gate even if
/// the throughput floor holds.
#[derive(Debug, Clone)]
pub struct ChaosGate {
    /// Every storm request resolved (or was turned away with a typed
    /// error) and the fault-free recovery replay delivered every frame.
    pub all_resolved: bool,
    /// Panicked workers caught and respawned during the storm.
    pub respawns: u64,
    /// Workers that panicked past the restart budget and stayed lost.
    pub lost_workers: u64,
}

impl ChaosGate {
    /// `true` when the storm resolved cleanly and the pool recovered.
    pub fn passed(&self) -> bool {
        self.all_resolved && self.lost_workers == 0
    }
}

/// Wire-deployment summary of a record produced by `bench_serve --wire`:
/// real `gcc-served` shard processes behind a `gcc-shard` consistent-hash
/// proxy over loopback. When present, the gate requires a genuinely
/// sharded fleet (at least two backends), every client request resolved
/// (typed rejections count as resolved) and every frame delivered over
/// TCP bit-identical to a direct in-process render.
#[derive(Debug, Clone)]
pub struct WireGate {
    /// Backend `gcc-served` processes behind the proxy.
    pub shards: u64,
    /// Every client request through the proxy resolved and the fleet
    /// drained to clean exit codes on the wire `Shutdown` request.
    pub all_resolved: bool,
    /// Every wire-delivered frame matched its direct render bit-for-bit.
    pub parity_ok: bool,
}

impl WireGate {
    /// `true` when the fleet was sharded, nothing stranded, and the
    /// frames that crossed the wire were bit-identical.
    pub fn passed(&self) -> bool {
        self.shards >= 2 && self.all_resolved && self.parity_ok
    }
}

/// LOD-phase summary of a record produced by `bench_serve --lod`: the
/// same deadline-carrying orbit served with and without the adaptive
/// quality ladder. When present, the gate requires the degradation
/// contract to hold: the ladder run missed zero deadlines while the
/// exact run missed at least one (the deadline was genuinely
/// unmeetable at full quality), every frame of both runs was delivered,
/// and every rung's measured PSNR/SSIM met its documented floor.
#[derive(Debug, Clone)]
pub struct LodGate {
    /// Deadline misses of the ladder-on run (must be zero).
    pub misses_ladder_on: u64,
    /// Deadline misses of the ladder-off run (must be at least one).
    pub misses_ladder_off: u64,
    /// Frames the ladder dispatched at a degraded rung.
    pub degraded_frames: u64,
    /// Every frame of both runs was delivered.
    pub all_resolved: bool,
    /// Every rung's measured quality met its documented floor.
    pub quality_ok: bool,
}

impl LodGate {
    /// `true` when the ladder beat the deadline the exact run could not,
    /// without dropping frames or violating a quality floor.
    pub fn passed(&self) -> bool {
        self.misses_ladder_on == 0
            && self.misses_ladder_off >= 1
            && self.all_resolved
            && self.quality_ok
    }
}

/// Outcome of the serve-throughput floor check against a
/// `bench_serve/v3` record: the speedup over the naive
/// load-render-evict configuration must hold a floor, and the record's
/// own serve-vs-direct parity pass must have succeeded. The per-priority
/// p95 latencies of the batched configuration are carried along for the
/// report (the Interactive-beats-Bulk ordering is enforced by
/// `bench_serve` itself in full mode, where the workload is heavy enough
/// for the comparison to be meaningful). A record carrying a `"chaos"`
/// object additionally must have resolved its fault storm cleanly
/// ([`ChaosGate`]); one carrying a `"lod"` object must have held the
/// deadline-degradation contract ([`LodGate`]).
#[derive(Debug, Clone)]
pub struct ServeGateReport {
    /// Minimum acceptable `speedup_vs_naive`.
    pub floor: f64,
    /// Measured batched/naive throughput ratio.
    pub speedup_vs_naive: f64,
    /// Whether the record's serve-vs-direct parity check passed.
    pub parity_ok: bool,
    /// Batched-config Interactive p95 latency, ms (absent when the
    /// workload had no interactive traffic).
    pub interactive_p95_ms: Option<f64>,
    /// Batched-config Bulk p95 latency, ms (absent when the workload had
    /// no bulk traffic).
    pub bulk_p95_ms: Option<f64>,
    /// Chaos-phase summary when the record was produced with `--chaos`.
    pub chaos: Option<ChaosGate>,
    /// Wire-deployment summary when the record was produced with
    /// `--wire`.
    pub wire: Option<WireGate>,
    /// LOD-phase summary when the record was produced with `--lod`.
    pub lod: Option<LodGate>,
}

impl ServeGateReport {
    /// `true` when parity held, the speedup clears the floor, and — for
    /// chaos/wire/lod records — the fault storm resolved cleanly, the
    /// sharded deployment held its contract, and the quality ladder beat
    /// its deadline within the documented quality floors.
    pub fn passed(&self) -> bool {
        self.parity_ok
            && self.speedup_vs_naive >= self.floor
            && self.chaos.as_ref().is_none_or(ChaosGate::passed)
            && self.wire.as_ref().is_none_or(WireGate::passed)
            && self.lod.as_ref().is_none_or(LodGate::passed)
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "serve speedup vs naive: {:.2}x (floor {:.2}x){}\n",
            self.speedup_vs_naive,
            self.floor,
            if self.speedup_vs_naive >= self.floor {
                ""
            } else {
                "  BELOW FLOOR"
            },
        );
        out.push_str(&format!(
            "serve parity: {}\n",
            if self.parity_ok { "ok" } else { "FAILED" }
        ));
        if let (Some(i), Some(b)) = (self.interactive_p95_ms, self.bulk_p95_ms) {
            out.push_str(&format!(
                "batched p95: interactive {i:.2} ms vs bulk {b:.2} ms\n"
            ));
        }
        if let Some(c) = &self.chaos {
            out.push_str(&format!(
                "chaos storm: {} ({} respawns, {} lost workers){}\n",
                if c.all_resolved {
                    "all requests resolved"
                } else {
                    "REQUESTS STRANDED"
                },
                c.respawns,
                c.lost_workers,
                if c.passed() { "" } else { "  NOT RECOVERED" },
            ));
        }
        if let Some(w) = &self.wire {
            out.push_str(&format!(
                "wire fleet: {} shards, {}, frame parity {}{}\n",
                w.shards,
                if w.all_resolved {
                    "all requests resolved"
                } else {
                    "REQUESTS STRANDED"
                },
                if w.parity_ok { "ok" } else { "DIVERGED" },
                if w.passed() { "" } else { "  FAILED" },
            ));
        }
        if let Some(l) = &self.lod {
            out.push_str(&format!(
                "lod ladder: {} misses vs {} ladder-off ({} degraded frames), {}, quality {}{}\n",
                l.misses_ladder_on,
                l.misses_ladder_off,
                l.degraded_frames,
                if l.all_resolved {
                    "all frames delivered"
                } else {
                    "FRAMES LOST"
                },
                if l.quality_ok { "ok" } else { "BELOW FLOOR" },
                if l.passed() { "" } else { "  FAILED" },
            ));
        }
        out.push_str(&format!(
            "serve gate: {}\n",
            if self.passed() { "PASS" } else { "FAIL" }
        ));
        out
    }
}

/// Checks a `bench_serve/v3` record against a throughput floor.
///
/// # Errors
///
/// Returns a message for malformed JSON, a record of the wrong schema,
/// missing fields, or an invalid floor.
pub fn check_serve_record(text: &str, floor: f64) -> Result<ServeGateReport, String> {
    if !(floor.is_finite() && floor >= 0.0) {
        return Err(format!("invalid serve floor {floor}"));
    }
    let doc = json::parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing 'schema'")?;
    if schema != "bench_serve/v3" {
        return Err(format!("unexpected schema '{schema}'"));
    }
    let speedup = doc
        .get("speedup_vs_naive")
        .and_then(Value::as_f32)
        .ok_or("missing number 'speedup_vs_naive'")?;
    let parity_ok = match doc.get("parity_ok") {
        Some(Value::Bool(b)) => *b,
        _ => return Err("missing bool 'parity_ok'".into()),
    };
    // Per-priority p95s of the batched config, if present.
    let mut interactive_p95_ms = None;
    let mut bulk_p95_ms = None;
    if let Some(configs) = doc.get("configs").and_then(Value::as_arr) {
        let batched = configs
            .iter()
            .find(|c| c.get("name").and_then(Value::as_str) == Some("batched_lru"));
        if let Some(prios) = batched
            .and_then(|c| c.get("per_priority"))
            .and_then(Value::as_arr)
        {
            for p in prios {
                let p95 = p
                    .get("latency_p95_ms")
                    .and_then(Value::as_f32)
                    .map(f64::from);
                match p.get("priority").and_then(Value::as_str) {
                    Some("interactive") => interactive_p95_ms = p95,
                    Some("bulk") => bulk_p95_ms = p95,
                    _ => {}
                }
            }
        }
    }
    // A chaos record must carry a complete summary — a present-but-
    // malformed "chaos" object is an error, not a silent pass.
    let chaos = match doc.get("chaos") {
        None => None,
        Some(c) => {
            let all_resolved = match c.get("all_resolved") {
                Some(Value::Bool(b)) => *b,
                _ => return Err("chaos: missing bool 'all_resolved'".into()),
            };
            let count = |k: &str| -> Result<u64, String> {
                c.get(k)
                    .and_then(Value::as_f32)
                    .filter(|v| v.is_finite() && *v >= 0.0)
                    .map(|v| v as u64)
                    .ok_or(format!("chaos: missing count '{k}'"))
            };
            Some(ChaosGate {
                all_resolved,
                respawns: count("respawns")?,
                lost_workers: count("lost_workers")?,
            })
        }
    };
    // Same contract for a wire record: a present-but-malformed "wire"
    // object is an error, not a silent pass.
    let wire = match doc.get("wire") {
        None => None,
        Some(w) => {
            let flag = |k: &str| -> Result<bool, String> {
                match w.get(k) {
                    Some(Value::Bool(b)) => Ok(*b),
                    _ => Err(format!("wire: missing bool '{k}'")),
                }
            };
            let shards = w
                .get("shards")
                .and_then(Value::as_f32)
                .filter(|v| v.is_finite() && *v >= 0.0)
                .map(|v| v as u64)
                .ok_or("wire: missing count 'shards'")?;
            Some(WireGate {
                shards,
                all_resolved: flag("all_resolved")?,
                parity_ok: flag("parity_ok")?,
            })
        }
    };
    // And for a lod record: a present-but-malformed "lod" object is an
    // error, not a silent pass.
    let lod = match doc.get("lod") {
        None => None,
        Some(l) => {
            let flag = |k: &str| -> Result<bool, String> {
                match l.get(k) {
                    Some(Value::Bool(b)) => Ok(*b),
                    _ => Err(format!("lod: missing bool '{k}'")),
                }
            };
            let count = |k: &str| -> Result<u64, String> {
                l.get(k)
                    .and_then(Value::as_f32)
                    .filter(|v| v.is_finite() && *v >= 0.0)
                    .map(|v| v as u64)
                    .ok_or(format!("lod: missing count '{k}'"))
            };
            Some(LodGate {
                misses_ladder_on: count("misses_ladder_on")?,
                misses_ladder_off: count("misses_ladder_off")?,
                degraded_frames: count("degraded_frames")?,
                all_resolved: flag("all_resolved")?,
                quality_ok: flag("quality_ok")?,
            })
        }
    };
    Ok(ServeGateReport {
        floor,
        speedup_vs_naive: f64::from(speedup),
        parity_ok,
        interactive_p95_ms,
        bulk_p95_ms,
        chaos,
        wire,
        lod,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(cells: &[(&str, f32, &str, &str, f64)]) -> String {
        let mut out = String::from(
            "{\"schema\": \"bench_frame/v1\", \"smoke\": true, \"reps\": 1, \
             \"host_threads\": 1, \"results\": [\n",
        );
        for (i, (scene, scale, engine, par, ms)) in cells.iter().enumerate() {
            out.push_str(&format!(
                "{{\"scene\": \"{scene}\", \"scale\": {scale}, \"gaussians\": 10, \
                 \"width\": 8, \"height\": 8, \"engine\": \"{engine}\", \
                 \"parallelism\": \"{par}\", \"threads\": 1, \"ms_per_frame\": {ms}}}{}",
                if i + 1 == cells.len() { "\n" } else { ",\n" }
            ));
        }
        out.push_str("]}");
        out
    }

    fn baseline() -> String {
        record(&[
            ("Lego", 0.05, "standard_frame_engine", "sequential", 10.0),
            ("Lego", 0.05, "standard_frame_engine", "auto", 4.0),
            (
                "Train",
                0.02,
                "gaussian_wise_frame_engine",
                "sequential",
                20.0,
            ),
        ])
    }

    #[test]
    fn identical_records_pass() {
        let report = compare(&baseline(), &baseline(), 0.25).unwrap();
        assert!(report.passed());
        assert_eq!(report.cells.len(), 3);
        assert!(report.missing_in_current.is_empty());
        assert!(report.new_in_current.is_empty());
        assert!(report.render().contains("PASS"));
    }

    #[test]
    fn inflated_timing_fails_the_gate_and_names_the_cell() {
        // The acceptance check: an artificially inflated record must trip
        // the gate.
        let current = record(&[
            ("Lego", 0.05, "standard_frame_engine", "sequential", 10.0),
            ("Lego", 0.05, "standard_frame_engine", "auto", 4.0),
            (
                "Train",
                0.02,
                "gaussian_wise_frame_engine",
                "sequential",
                31.0,
            ),
        ]);
        let report = compare(&baseline(), &current, 0.25).unwrap();
        assert!(!report.passed());
        let bad: Vec<&CellComparison> = report.cells.iter().filter(|c| c.regressed).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(
            bad[0].key,
            "Train@0.02/gaussian_wise_frame_engine/sequential"
        );
        assert!((bad[0].ratio - 1.55).abs() < 1e-9);
        assert!(report.render().contains("REGRESSION"));
        assert!(report.render().contains("FAIL"));
    }

    #[test]
    fn failure_summary_names_each_regressed_cell_with_both_timings() {
        let current = record(&[
            ("Lego", 0.05, "standard_frame_engine", "sequential", 26.0),
            ("Lego", 0.05, "standard_frame_engine", "auto", 4.0),
            (
                "Train",
                0.02,
                "gaussian_wise_frame_engine",
                "sequential",
                31.0,
            ),
        ]);
        let report = compare(&baseline(), &current, 0.25).unwrap();
        let lines = report.regression_lines();
        assert_eq!(lines.len(), 2, "one line per regressed cell: {lines:?}");
        // Baseline and current land side by side with the percent delta.
        assert_eq!(
            lines[0],
            "REGRESSED Lego@0.05/standard_frame_engine/sequential: \
             baseline 10.0000 ms vs current 26.0000 ms (+160.0% > +25% tolerated)"
        );
        assert!(lines[1].contains("Train@0.02/gaussian_wise_frame_engine/sequential"));
        assert!(lines[1].contains("baseline 20.0000 ms vs current 31.0000 ms"));
        assert!(lines[1].contains("+55.0%"));
        // The rendered report carries the summary block too.
        let rendered = report.render();
        for line in &lines {
            assert!(rendered.contains(line.as_str()), "render misses: {line}");
        }
        // A clean run produces no summary lines.
        assert!(compare(&baseline(), &baseline(), 0.25)
            .unwrap()
            .regression_lines()
            .is_empty());
    }

    #[test]
    fn slowdown_within_tolerance_passes() {
        let current = record(&[
            ("Lego", 0.05, "standard_frame_engine", "sequential", 12.4),
            ("Lego", 0.05, "standard_frame_engine", "auto", 4.9),
            (
                "Train",
                0.02,
                "gaussian_wise_frame_engine",
                "sequential",
                24.9,
            ),
        ]);
        assert!(compare(&baseline(), &current, 0.25).unwrap().passed());
        // The same run fails under a tighter tolerance.
        assert!(!compare(&baseline(), &current, 0.10).unwrap().passed());
    }

    #[test]
    fn speedups_always_pass() {
        let current = record(&[
            ("Lego", 0.05, "standard_frame_engine", "sequential", 1.0),
            ("Lego", 0.05, "standard_frame_engine", "auto", 0.4),
            (
                "Train",
                0.02,
                "gaussian_wise_frame_engine",
                "sequential",
                2.0,
            ),
        ]);
        let report = compare(&baseline(), &current, 0.0).unwrap();
        assert!(report.passed());
        assert!(report.cells.iter().all(|c| c.ratio < 1.0 + 1e-12));
    }

    #[test]
    fn missing_baseline_cell_fails_new_cell_does_not() {
        let current = record(&[
            ("Lego", 0.05, "standard_frame_engine", "sequential", 10.0),
            ("Lego", 0.05, "standard_frame_engine", "auto", 4.0),
        ]);
        let report = compare(&baseline(), &current, 0.25).unwrap();
        assert!(!report.passed());
        assert_eq!(report.missing_in_current.len(), 1);

        let current = record(&[
            ("Lego", 0.05, "standard_frame_engine", "sequential", 10.0),
            ("Lego", 0.05, "standard_frame_engine", "auto", 4.0),
            (
                "Train",
                0.02,
                "gaussian_wise_frame_engine",
                "sequential",
                20.0,
            ),
            ("Truck", 0.02, "standard_frame_engine", "sequential", 9.0),
        ]);
        let report = compare(&baseline(), &current, 0.25).unwrap();
        assert!(report.passed());
        assert_eq!(
            report.new_in_current,
            vec!["Truck@0.02/standard_frame_engine/sequential".to_string()]
        );
    }

    #[test]
    fn malformed_records_are_errors() {
        assert!(compare("not json", &baseline(), 0.25).is_err());
        assert!(compare(&baseline(), "{\"schema\": \"bench_frame/v1\"}", 0.25).is_err());
        let wrong_schema = baseline().replace("bench_frame/v1", "bench_frame/v9");
        assert!(compare(&wrong_schema, &baseline(), 0.25).is_err());
        let empty = record(&[]).replace("[\n]", "[]");
        assert!(parse_bench_cells(&empty).is_err());
        assert!(compare(&baseline(), &baseline(), f64::NAN).is_err());
        assert!(compare(&baseline(), &baseline(), -0.1).is_err());
    }

    #[test]
    fn zero_ms_cells_are_rejected_at_parse() {
        let zero = record(&[("Lego", 0.05, "standard_frame_engine", "sequential", 0.0)]);
        assert!(parse_bench_cells(&zero).is_err());
    }

    fn serve_record(speedup: f64, parity_ok: bool) -> String {
        format!(
            "{{\"schema\": \"bench_serve/v3\", \"parity_ok\": {parity_ok}, \
             \"configs\": [\
             {{\"name\": \"batched_lru\", \"per_priority\": [\
             {{\"priority\": \"interactive\", \"latency_p95_ms\": 12.5}}, \
             {{\"priority\": \"bulk\", \"latency_p95_ms\": 80.0}}]}}, \
             {{\"name\": \"naive_evict\", \"per_priority\": []}}], \
             \"speedup_vs_naive\": {speedup}}}"
        )
    }

    #[test]
    fn serve_gate_passes_above_the_floor_and_reads_p95s() {
        let report = check_serve_record(&serve_record(3.2, true), 2.0).unwrap();
        assert!(report.passed());
        assert!((report.speedup_vs_naive - 3.2).abs() < 1e-6);
        assert_eq!(report.interactive_p95_ms, Some(12.5));
        assert_eq!(report.bulk_p95_ms, Some(80.0));
        assert!(report.render().contains("PASS"));
    }

    #[test]
    fn serve_gate_fails_below_the_floor() {
        // The acceptance check: a throughput collapse must trip the gate.
        let report = check_serve_record(&serve_record(1.4, true), 2.0).unwrap();
        assert!(!report.passed());
        assert!(report.render().contains("BELOW FLOOR"));
        assert!(report.render().contains("FAIL"));
        // Exactly at the floor passes.
        assert!(check_serve_record(&serve_record(2.0, true), 2.0)
            .unwrap()
            .passed());
    }

    #[test]
    fn serve_gate_fails_on_broken_parity_regardless_of_speedup() {
        let report = check_serve_record(&serve_record(9.0, false), 2.0).unwrap();
        assert!(!report.passed());
        assert!(report.render().contains("parity: FAILED"));
    }

    fn chaos_record(speedup: f64, all_resolved: bool, lost_workers: u64) -> String {
        let base = serve_record(speedup, true);
        let chaos = format!(
            "\"chaos\": {{\"seed\": 7, \"storm_requests\": 24, \"resolved\": 20, \
             \"turned_away\": 4, \"respawns\": 3, \"lost_workers\": {lost_workers}, \
             \"all_resolved\": {all_resolved}}}, \"speedup_vs_naive\""
        );
        base.replace("\"speedup_vs_naive\"", &chaos)
    }

    #[test]
    fn serve_gate_reads_and_enforces_the_chaos_summary() {
        let report = check_serve_record(&chaos_record(3.0, true, 0), 2.0).unwrap();
        assert!(report.passed());
        let c = report.chaos.as_ref().expect("chaos summary parsed");
        assert!(c.all_resolved);
        assert_eq!(c.respawns, 3);
        assert_eq!(c.lost_workers, 0);
        assert!(report.render().contains("all requests resolved"));

        // A stranded storm fails the gate even above the floor.
        let report = check_serve_record(&chaos_record(9.0, false, 0), 2.0).unwrap();
        assert!(!report.passed());
        assert!(report.render().contains("REQUESTS STRANDED"));

        // A pool that never recovered to width fails too.
        let report = check_serve_record(&chaos_record(9.0, true, 1), 2.0).unwrap();
        assert!(!report.passed());
        assert!(report.render().contains("NOT RECOVERED"));
    }

    #[test]
    fn serve_gate_rejects_malformed_chaos_summaries() {
        // Present-but-incomplete chaos objects are parse errors, not
        // silent passes.
        let missing_resolved =
            chaos_record(3.0, true, 0).replace("\"all_resolved\": true", "\"all_resolved\": 1");
        assert!(check_serve_record(&missing_resolved, 2.0).is_err());
        let missing_lost = chaos_record(3.0, true, 0).replace("\"lost_workers\": 0, ", "");
        assert!(check_serve_record(&missing_lost, 2.0).is_err());
        // Records without a chaos object stay valid (pinned above by
        // every other serve-gate test).
        assert!(check_serve_record(&serve_record(3.0, true), 2.0)
            .unwrap()
            .chaos
            .is_none());
    }

    fn wire_record(speedup: f64, shards: u64, all_resolved: bool, parity_ok: bool) -> String {
        let base = serve_record(speedup, true);
        let wire = format!(
            "\"wire\": {{\"shards\": {shards}, \"clients\": 2, \"requests\": 8, \
             \"resolved\": 8, \"rejections\": 2, \"parity_frames\": 18, \
             \"delivered_frames\": 18, \"wall_ms\": 120.0, \"throughput_fps\": 150.0, \
             \"clean_exit\": true, \"all_resolved\": {all_resolved}, \
             \"parity_ok\": {parity_ok}}}, \"speedup_vs_naive\""
        );
        base.replace("\"speedup_vs_naive\"", &wire)
    }

    #[test]
    fn serve_gate_reads_and_enforces_the_wire_summary() {
        let report = check_serve_record(&wire_record(3.0, 2, true, true), 2.0).unwrap();
        assert!(report.passed());
        let w = report.wire.as_ref().expect("wire summary parsed");
        assert_eq!(w.shards, 2);
        assert!(w.all_resolved && w.parity_ok);
        assert!(report.render().contains("wire fleet: 2 shards"));

        // A stranded client request fails the gate even above the floor.
        let report = check_serve_record(&wire_record(9.0, 2, false, true), 2.0).unwrap();
        assert!(!report.passed());
        assert!(report.render().contains("REQUESTS STRANDED"));

        // A wire frame that diverged from its direct render fails too.
        let report = check_serve_record(&wire_record(9.0, 2, true, false), 2.0).unwrap();
        assert!(!report.passed());
        assert!(report.render().contains("DIVERGED"));

        // So does an unsharded "fleet": one backend is not a deployment.
        assert!(!check_serve_record(&wire_record(9.0, 1, true, true), 2.0)
            .unwrap()
            .passed());
    }

    #[test]
    fn serve_gate_rejects_malformed_wire_summaries() {
        // Present-but-incomplete wire objects are parse errors, not
        // silent passes.
        let bad_parity =
            wire_record(3.0, 2, true, true).replace("\"parity_ok\": true", "\"parity_ok\": 1");
        assert!(check_serve_record(&bad_parity, 2.0).is_err());
        let missing_shards = wire_record(3.0, 2, true, true).replace("\"shards\": 2, ", "");
        assert!(check_serve_record(&missing_shards, 2.0).is_err());
        // Records without a wire object stay valid.
        assert!(check_serve_record(&serve_record(3.0, true), 2.0)
            .unwrap()
            .wire
            .is_none());
    }

    fn lod_record(misses_on: u64, misses_off: u64, all_resolved: bool, quality_ok: bool) -> String {
        let base = serve_record(3.0, true);
        let lod = format!(
            "\"lod\": {{\"scene\": \"lodscene\", \"frames\": 12, \"deadline_ms\": 31.0, \
             \"full_ms\": 45.3, \"floor_ms\": 7.8, \"misses_ladder_on\": {misses_on}, \
             \"misses_ladder_off\": {misses_off}, \"degraded_frames\": 12, \
             \"frames_by_rung\": [0, 0, 1, 11], \"all_resolved\": {all_resolved}, \
             \"quality_ok\": {quality_ok}, \"rungs\": [{{\"name\": \"full\", \
             \"psnr_db\": 99.0, \"ssim\": 1.0, \"min_psnr_db\": 99.0, \
             \"min_ssim\": 0.999}}]}}, \"speedup_vs_naive\""
        );
        base.replace("\"speedup_vs_naive\"", &lod)
    }

    #[test]
    fn serve_gate_reads_and_enforces_the_lod_summary() {
        let report = check_serve_record(&lod_record(0, 12, true, true), 2.0).unwrap();
        assert!(report.passed());
        let l = report.lod.as_ref().expect("lod summary parsed");
        assert_eq!(l.misses_ladder_on, 0);
        assert_eq!(l.misses_ladder_off, 12);
        assert_eq!(l.degraded_frames, 12);
        assert!(report
            .render()
            .contains("lod ladder: 0 misses vs 12 ladder-off"));

        // A ladder run that still missed a deadline fails the gate.
        assert!(!check_serve_record(&lod_record(1, 12, true, true), 2.0)
            .unwrap()
            .passed());
        // A deadline the exact run also met proves nothing — refused.
        assert!(!check_serve_record(&lod_record(0, 0, true, true), 2.0)
            .unwrap()
            .passed());
        // Dropped frames fail even with zero misses.
        let report = check_serve_record(&lod_record(0, 12, false, true), 2.0).unwrap();
        assert!(!report.passed());
        assert!(report.render().contains("FRAMES LOST"));
        // So does a rung below its documented quality floor.
        let report = check_serve_record(&lod_record(0, 12, true, false), 2.0).unwrap();
        assert!(!report.passed());
        assert!(report.render().contains("BELOW FLOOR"));
    }

    #[test]
    fn serve_gate_rejects_malformed_lod_summaries() {
        // Present-but-incomplete lod objects are parse errors, not
        // silent passes.
        let bad_quality =
            lod_record(0, 12, true, true).replace("\"quality_ok\": true", "\"quality_ok\": 1");
        assert!(check_serve_record(&bad_quality, 2.0).is_err());
        let missing_misses = lod_record(0, 12, true, true).replace("\"misses_ladder_on\": 0, ", "");
        assert!(check_serve_record(&missing_misses, 2.0).is_err());
        // Records without a lod object stay valid.
        assert!(check_serve_record(&serve_record(3.0, true), 2.0)
            .unwrap()
            .lod
            .is_none());
    }

    #[test]
    fn serve_gate_rejects_malformed_records() {
        assert!(check_serve_record("not json", 2.0).is_err());
        assert!(check_serve_record("{\"schema\": \"bench_serve/v2\"}", 2.0).is_err());
        assert!(
            check_serve_record("{\"schema\": \"bench_serve/v3\", \"parity_ok\": true}", 2.0)
                .is_err(),
            "missing speedup must be an error"
        );
        assert!(check_serve_record(&serve_record(3.0, true), f64::NAN).is_err());
        assert!(check_serve_record(&serve_record(3.0, true), -1.0).is_err());
    }
}
