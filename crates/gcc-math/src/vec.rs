//! Small fixed-size vectors (`f32`), the workhorse types of the pipeline.

use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign};

macro_rules! impl_vec_common {
    ($name:ident, $n:expr, [$($f:ident),+]) => {
        impl $name {
            /// Vector with all components set to `v`.
            pub const fn splat(v: f32) -> Self {
                Self { $($f: v),+ }
            }

            /// Zero vector.
            pub const ZERO: Self = Self::splat(0.0);

            /// Dot product.
            pub fn dot(self, rhs: Self) -> f32 {
                0.0 $(+ self.$f * rhs.$f)+
            }

            /// Euclidean (L2) norm.
            pub fn norm(self) -> f32 {
                self.dot(self).sqrt()
            }

            /// Squared Euclidean norm (avoids the square root).
            pub fn norm_sq(self) -> f32 {
                self.dot(self)
            }

            /// Returns the vector scaled to unit length.
            ///
            /// # Panics
            ///
            /// Panics in debug builds if the vector is (near-)zero; in
            /// release builds the result contains non-finite components.
            pub fn normalized(self) -> Self {
                let n = self.norm();
                debug_assert!(n > 1e-12, "normalizing a near-zero vector");
                self / n
            }

            /// Component-wise product (Hadamard product).
            pub fn mul_elem(self, rhs: Self) -> Self {
                Self { $($f: self.$f * rhs.$f),+ }
            }

            /// Component-wise minimum.
            pub fn min_elem(self, rhs: Self) -> Self {
                Self { $($f: self.$f.min(rhs.$f)),+ }
            }

            /// Component-wise maximum.
            pub fn max_elem(self, rhs: Self) -> Self {
                Self { $($f: self.$f.max(rhs.$f)),+ }
            }

            /// Largest component.
            pub fn max_component(self) -> f32 {
                let mut m = f32::NEG_INFINITY;
                $( m = m.max(self.$f); )+
                m
            }

            /// `true` when every component is finite.
            pub fn is_finite(self) -> bool {
                true $(&& self.$f.is_finite())+
            }

            /// Components as an array.
            pub fn to_array(self) -> [f32; $n] {
                [$(self.$f),+]
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self { $($f: self.$f + rhs.$f),+ }
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                *self = *self + rhs;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self { $($f: self.$f - rhs.$f),+ }
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                *self = *self - rhs;
            }
        }

        impl Mul<f32> for $name {
            type Output = Self;
            fn mul(self, rhs: f32) -> Self {
                Self { $($f: self.$f * rhs),+ }
            }
        }

        impl MulAssign<f32> for $name {
            fn mul_assign(&mut self, rhs: f32) {
                *self = *self * rhs;
            }
        }

        impl Mul<$name> for f32 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                rhs * self
            }
        }

        impl Div<f32> for $name {
            type Output = Self;
            fn div(self, rhs: f32) -> Self {
                Self { $($f: self.$f / rhs),+ }
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self { $($f: -self.$f),+ }
            }
        }

        impl From<[f32; $n]> for $name {
            fn from(a: [f32; $n]) -> Self {
                let [$($f),+] = a;
                Self { $($f),+ }
            }
        }

        impl From<$name> for [f32; $n] {
            fn from(v: $name) -> Self {
                v.to_array()
            }
        }
    };
}

/// 2D vector: pixel coordinates, projected means, screen offsets.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// Horizontal component.
    pub x: f32,
    /// Vertical component.
    pub y: f32,
}

impl_vec_common!(Vec2, 2, [x, y]);

impl Vec2 {
    /// Constructs a vector from its components.
    pub const fn new(x: f32, y: f32) -> Self {
        Self { x, y }
    }

    /// 2D cross product (z-component of the 3D cross product).
    pub fn cross(self, rhs: Self) -> f32 {
        self.x * rhs.y - self.y * rhs.x
    }

    /// Rotates the vector counter-clockwise by `angle` radians.
    pub fn rotated(self, angle: f32) -> Self {
        let (s, c) = angle.sin_cos();
        Self::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }
}

impl Index<usize> for Vec2 {
    type Output = f32;
    fn index(&self, i: usize) -> &f32 {
        match i {
            0 => &self.x,
            1 => &self.y,
            _ => panic!("Vec2 index {i} out of range"),
        }
    }
}

/// 3D vector: world/camera-space positions, scales, view directions, RGB.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
}

impl_vec_common!(Vec3, 3, [x, y, z]);

impl Vec3 {
    /// Constructs a vector from its components.
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Self { x, y, z }
    }

    /// Cross product.
    pub fn cross(self, rhs: Self) -> Self {
        Self::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// First two components.
    pub fn xy(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }

    /// Extends to homogeneous coordinates with `w`.
    pub fn extend(self, w: f32) -> Vec4 {
        Vec4::new(self.x, self.y, self.z, w)
    }
}

impl Index<usize> for Vec3 {
    type Output = f32;
    fn index(&self, i: usize) -> &f32 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    fn index_mut(&mut self, i: usize) -> &mut f32 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

/// 4D vector: homogeneous coordinates and quaternion storage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec4 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
    /// W component.
    pub w: f32,
}

impl_vec_common!(Vec4, 4, [x, y, z, w]);

impl Vec4 {
    /// Constructs a vector from its components.
    pub const fn new(x: f32, y: f32, z: f32, w: f32) -> Self {
        Self { x, y, z, w }
    }

    /// First three components.
    pub fn xyz(self) -> Vec3 {
        Vec3::new(self.x, self.y, self.z)
    }

    /// Perspective division: `(x/w, y/w, z/w)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `|w|` is near zero.
    pub fn project(self) -> Vec3 {
        debug_assert!(self.w.abs() > 1e-12, "perspective division by ~0");
        self.xyz() / self.w
    }
}

impl Index<usize> for Vec4 {
    type Output = f32;
    fn index(&self, i: usize) -> &f32 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            3 => &self.w,
            _ => panic!("Vec4 index {i} out of range"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn vec2_arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -4.0);
        assert_eq!(a + b, Vec2::new(4.0, -2.0));
        assert_eq!(a - b, Vec2::new(-2.0, 6.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
        assert_eq!(a.dot(b), 3.0 - 8.0);
        assert_eq!(a.cross(b), -4.0 - 6.0);
    }

    #[test]
    fn vec2_rotation_preserves_norm() {
        let v = Vec2::new(3.0, 4.0);
        let r = v.rotated(1.2345);
        assert!(approx_eq(r.norm(), 5.0, 1e-5));
        // Rotating by 90 degrees maps x-axis to y-axis.
        let e = Vec2::new(1.0, 0.0).rotated(std::f32::consts::FRAC_PI_2);
        assert!(approx_eq(e.x, 0.0, 1e-6) && approx_eq(e.y, 1.0, 1e-6));
    }

    #[test]
    fn vec3_cross_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.5, 4.0);
        let c = a.cross(b);
        assert!(approx_eq(c.dot(a), 0.0, 1e-4));
        assert!(approx_eq(c.dot(b), 0.0, 1e-4));
    }

    #[test]
    fn vec3_normalize_unit_length() {
        let v = Vec3::new(0.0, 3.0, 4.0).normalized();
        assert!(approx_eq(v.norm(), 1.0, 1e-6));
    }

    #[test]
    fn vec4_project_divides_by_w() {
        let v = Vec4::new(2.0, 4.0, 6.0, 2.0);
        assert_eq!(v.project(), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn elementwise_min_max() {
        let a = Vec3::new(1.0, 5.0, -2.0);
        let b = Vec3::new(2.0, 4.0, -3.0);
        assert_eq!(a.min_elem(b), Vec3::new(1.0, 4.0, -3.0));
        assert_eq!(a.max_elem(b), Vec3::new(2.0, 5.0, -2.0));
        assert_eq!(a.max_component(), 5.0);
    }

    #[test]
    fn array_round_trip() {
        let v = Vec4::new(1.0, 2.0, 3.0, 4.0);
        let a: [f32; 4] = v.into();
        assert_eq!(Vec4::from(a), v);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let _ = Vec3::new(0.0, 0.0, 0.0)[3];
    }
}
