//! Symmetric 2×2 matrices — projected covariances Σ′ and conics Σ′⁻¹.
//!
//! 3DGS stores the screen-space covariance as three floats `(a, b, c)` with
//!
//! ```text
//! Σ′ = | a  b |
//!      | b  c |
//! ```
//!
//! The closed-form eigenvalues drive both the 3σ rule (paper Eq. 6) and the
//! ω-σ law (paper Eq. 8).

use crate::{Mat2, Vec2};

/// Symmetric 2×2 matrix stored as `(a, b, c)` = (m00, m01 = m10, m11).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SymMat2 {
    /// Top-left entry.
    pub a: f32,
    /// Off-diagonal entry.
    pub b: f32,
    /// Bottom-right entry.
    pub c: f32,
}

impl SymMat2 {
    /// Constructs from the three stored entries.
    pub const fn new(a: f32, b: f32, c: f32) -> Self {
        Self { a, b, c }
    }

    /// Identity matrix.
    pub const IDENTITY: Self = Self::new(1.0, 0.0, 1.0);

    /// Extracts the symmetric part of a general 2×2 matrix. The EWA chain
    /// produces a symmetric Σ′ up to floating-point noise; this folds the
    /// noise symmetrically.
    pub fn from_mat2(m: Mat2) -> Self {
        Self::new(m.m[0][0], 0.5 * (m.m[0][1] + m.m[1][0]), m.m[1][1])
    }

    /// Expands to a general [`Mat2`].
    pub fn to_mat2(self) -> Mat2 {
        Mat2::from_rows([self.a, self.b], [self.b, self.c])
    }

    /// Determinant `ac − b²`.
    pub fn det(self) -> f32 {
        self.a * self.c - self.b * self.b
    }

    /// Trace `a + c`.
    pub fn trace(self) -> f32 {
        self.a + self.c
    }

    /// Eigenvalues `(λ₁, λ₂)` with `λ₁ ≥ λ₂`, in closed form:
    /// `λ = tr/2 ± √((tr/2)² − det)`.
    pub fn eigenvalues(self) -> (f32, f32) {
        let mid = 0.5 * self.trace();
        // Guard the discriminant against tiny negative values from rounding.
        let disc = (mid * mid - self.det()).max(0.0).sqrt();
        (mid + disc, mid - disc)
    }

    /// Unit eigenvector of the *largest* eigenvalue — the major axis
    /// direction of the splat ellipse (used by the OBB construction).
    pub fn major_axis(self) -> Vec2 {
        let (l1, _) = self.eigenvalues();
        // Solve (Σ − λ₁ I) v = 0. Pick the better-conditioned row.
        let v1 = Vec2::new(self.b, l1 - self.a);
        let v2 = Vec2::new(l1 - self.c, self.b);
        let v = if v1.norm_sq() > v2.norm_sq() { v1 } else { v2 };
        if v.norm_sq() < 1e-24 {
            // Isotropic: any direction is a major axis.
            Vec2::new(1.0, 0.0)
        } else {
            v.normalized()
        }
    }

    /// Inverse (the conic used in the alpha evaluation, paper Eq. 3), or
    /// `None` when the determinant magnitude is below `1e-12`.
    pub fn inverse(self) -> Option<Self> {
        let d = self.det();
        if d.abs() < 1e-12 {
            return None;
        }
        Some(Self::new(self.c / d, -self.b / d, self.a / d))
    }

    /// Quadratic form `dᵀ M d` — the Mahalanobis term inside the alpha
    /// exponential (paper Eqs. 3, 7, 9).
    pub fn quad_form(self, d: Vec2) -> f32 {
        self.a * d.x * d.x + 2.0 * self.b * d.x * d.y + self.c * d.y * d.y
    }

    /// `true` when the matrix is positive definite (both eigenvalues > 0),
    /// the validity condition for a splat footprint.
    pub fn is_positive_definite(self) -> bool {
        self.det() > 0.0 && self.a > 0.0
    }

    /// Adds `v` to the diagonal — the screen-space dilation (low-pass
    /// filter) term that the 3DGS rasterizer applies (`Σ′ + 0.3·I`).
    pub fn dilated(self, v: f32) -> Self {
        Self::new(self.a + v, self.b, self.c + v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn eigenvalues_of_diagonal() {
        let s = SymMat2::new(4.0, 0.0, 1.0);
        let (l1, l2) = s.eigenvalues();
        assert!(approx_eq(l1, 4.0, 1e-6));
        assert!(approx_eq(l2, 1.0, 1e-6));
    }

    #[test]
    fn eigenvalues_satisfy_characteristic_equation() {
        let s = SymMat2::new(3.0, 1.5, 2.0);
        let (l1, l2) = s.eigenvalues();
        for l in [l1, l2] {
            let char_val = (s.a - l) * (s.c - l) - s.b * s.b;
            assert!(char_val.abs() < 1e-4, "char poly at λ={l} is {char_val}");
        }
        assert!(l1 >= l2);
    }

    #[test]
    fn major_axis_is_eigenvector() {
        let s = SymMat2::new(5.0, 2.0, 1.0);
        let (l1, _) = s.eigenvalues();
        let v = s.major_axis();
        let mv = s.to_mat2().mul_vec(v);
        // M v should equal λ₁ v.
        assert!((mv - v * l1).norm() < 1e-4);
    }

    #[test]
    fn major_axis_isotropic_is_unit() {
        let s = SymMat2::new(2.0, 0.0, 2.0);
        assert!(approx_eq(s.major_axis().norm(), 1.0, 1e-6));
    }

    #[test]
    fn inverse_round_trip() {
        let s = SymMat2::new(2.0, 0.5, 1.0);
        let inv = s.inverse().unwrap();
        let prod = s.to_mat2() * inv.to_mat2();
        assert!(approx_eq(prod.m[0][0], 1.0, 1e-5));
        assert!(approx_eq(prod.m[1][1], 1.0, 1e-5));
        assert!(approx_eq(prod.m[0][1], 0.0, 1e-5));
    }

    #[test]
    fn singular_inverse_is_none() {
        let s = SymMat2::new(1.0, 1.0, 1.0);
        assert!(s.inverse().is_none());
    }

    #[test]
    fn quad_form_matches_explicit() {
        let s = SymMat2::new(2.0, -0.5, 3.0);
        let d = Vec2::new(1.5, -2.0);
        let explicit = d.dot(s.to_mat2().mul_vec(d));
        assert!(approx_eq(s.quad_form(d), explicit, 1e-5));
    }

    #[test]
    fn positive_definite_detection() {
        assert!(SymMat2::new(2.0, 0.1, 3.0).is_positive_definite());
        assert!(!SymMat2::new(-1.0, 0.0, 3.0).is_positive_definite());
        assert!(!SymMat2::new(1.0, 2.0, 1.0).is_positive_definite());
    }

    #[test]
    fn dilation_adds_to_diagonal() {
        let s = SymMat2::new(1.0, 0.5, 2.0).dilated(0.3);
        assert_eq!(s, SymMat2::new(1.3, 0.5, 2.3));
    }
}
