//! Q-format fixed-point helpers backing the Alpha Unit's EXP datapath.
//!
//! The paper (§4.4) stresses that, unlike GSCore's FP16 EXP unit which can
//! overflow, GCC's EXP unit uses *fully fixed-point arithmetic*. These
//! helpers model that datapath: signed 32-bit integers with a configurable
//! number of fractional bits.

/// Converts a float to fixed point with `frac_bits` fractional bits,
/// rounding to nearest.
///
/// # Panics
///
/// Panics if the value does not fit in an `i32` with the requested format
/// (that would be a hardware overflow, which the unit is designed to make
/// impossible over its clamped input range).
pub fn to_fixed(x: f32, frac_bits: u32) -> i32 {
    let scaled = (x as f64 * (1u64 << frac_bits) as f64).round();
    assert!(
        scaled >= f64::from(i32::MIN) && scaled <= f64::from(i32::MAX),
        "fixed-point overflow converting {x} with {frac_bits} fractional bits"
    );
    scaled as i32
}

/// Converts a fixed-point value back to a float.
pub fn from_fixed(x: i32, frac_bits: u32) -> f32 {
    (x as f64 / (1u64 << frac_bits) as f64) as f32
}

/// Fixed-point multiply: both operands have `frac_bits` fractional bits and
/// so does the result. Uses a 64-bit intermediate, as a hardware multiplier
/// would.
pub fn fixed_mul(a: i32, b: i32, frac_bits: u32) -> i32 {
    ((i64::from(a) * i64::from(b)) >> frac_bits) as i32
}

/// Saturating fixed-point addition.
pub fn fixed_add_sat(a: i32, b: i32) -> i32 {
    a.saturating_add(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn round_trip_is_close() {
        for &x in &[0.0f32, 1.0, -1.0, 1.72814, -5.54, 0.001, -0.001] {
            let f = to_fixed(x, 16);
            let back = from_fixed(f, 16);
            assert!(approx_eq(back, x, 1e-4), "{x} -> {back}");
        }
    }

    #[test]
    fn quantization_error_is_bounded_by_half_lsb() {
        let frac = 12u32;
        let lsb = 1.0 / (1u64 << frac) as f32;
        for i in 0..1000 {
            let x = -5.54 + 5.54 * (i as f32 / 1000.0);
            let err = (from_fixed(to_fixed(x, frac), frac) - x).abs();
            assert!(err <= 0.5001 * lsb, "error {err} at {x}");
        }
    }

    #[test]
    fn fixed_mul_matches_float_mul() {
        let a = 1.5f32;
        let b = -2.25f32;
        let fa = to_fixed(a, 16);
        let fb = to_fixed(b, 16);
        let prod = from_fixed(fixed_mul(fa, fb, 16), 16);
        assert!(approx_eq(prod, a * b, 1e-3));
    }

    #[test]
    #[should_panic(expected = "fixed-point overflow")]
    fn overflow_panics() {
        let _ = to_fixed(1e9, 16);
    }

    #[test]
    fn saturating_add_does_not_wrap() {
        assert_eq!(fixed_add_sat(i32::MAX, 1), i32::MAX);
        assert_eq!(fixed_add_sat(i32::MIN, -1), i32::MIN);
        assert_eq!(fixed_add_sat(1, 2), 3);
    }
}
