//! The Alpha Unit's lookup-table exponential (paper §4.4).
//!
//! Hardware rationale, quoted from the paper: meaningful alpha values lie in
//! `[1/255, 1)`, so the exponent input is confined to `[-5.54, 0)`. The LUT
//! covers only that interval with **16 linear segments**; inputs below
//! `-5.54` clamp to `α = 0` and inputs `≥ 0` saturate to `α = 1`, and the
//! whole unit runs in fixed-point arithmetic (avoiding GSCore's FP16
//! overflow issue). The paper states the approximation error is below 1%,
//! which this implementation meets (see the error-bound test).

use crate::fixed::{fixed_mul, from_fixed, to_fixed};

/// Lower edge of the LUT input range: `ln(1/255) ≈ -5.5413`.
pub const EXP_INPUT_MIN: f32 = -5.54;

/// `log2(e)` for the deterministic exponential's range reduction.
pub const DET_EXP_LOG2E: f32 = std::f32::consts::LOG2_E;

/// High part of `ln(2)` (Cody–Waite split; exactly representable with the
/// low 12 mantissa bits zero, so `k * DET_EXP_LN2_HI` is exact for the
/// small integer `k` values the reduction produces).
// The full decimal expansion is the point: it spells out the exact f32
// (0x3F317000) the split is built around.
#[allow(clippy::excessive_precision)]
pub const DET_EXP_LN2_HI: f32 = 0.693_359_375;

/// Low part of `ln(2)` (Cody–Waite split).
pub const DET_EXP_LN2_LO: f32 = -2.121_944_4e-4;

/// Degree-6 polynomial coefficients of the deterministic exponential
/// (Cephes `expf` minimax fit of `e^r` on `|r| ≤ ½·ln 2`), highest degree
/// first, with the trailing `r + 1` terms applied separately.
// Minimax coefficients, kept digit-for-digit as fitted (the ½-looking
// term is deliberately not exactly 0.5).
#[allow(clippy::excessive_precision)]
pub const DET_EXP_POLY: [f32; 6] = [
    1.987_569_2e-4,
    1.398_199_9e-3,
    8.333_452e-3,
    4.166_579_7e-2,
    1.666_666_5e-1,
    5.000_000_1e-1,
];

/// Deterministic software `e^x`: a fixed, explicitly ordered sequence of
/// IEEE-754 single-precision operations (range reduction by `ln 2`, a
/// degree-6 polynomial, and an exponent-bits scale) with **no FMA and no
/// libm call**, so the result is bit-identical on every target — and a
/// SIMD kernel that performs the same per-lane operation sequence is
/// bit-identical to this scalar reference by construction. This is the
/// bit-exactness anchor of the renderer's `ExpMode::Exact` datapath and
/// the `gcc_core::dispatch` vectorized alpha kernels.
///
/// Accuracy is ~2 ulp of `f32::exp` (the relative-error test pins `< 1e-6`
/// over the alpha domain `[-5.54, 0)`). Callers are expected to clamp the
/// domain first (the alpha datapath maps `x < -5.54 → 0`, `x ≥ 0 → 1`);
/// inputs of large magnitude overflow the exponent-bit scale and return
/// garbage rather than saturating.
#[inline]
pub fn det_exp(x: f32) -> f32 {
    // k = round-to-floor(x·log2(e) + ½): the power-of-two exponent.
    // Floor via truncate-and-adjust rather than `f32::floor`: on baseline
    // x86-64 (no SSE4.1) `floor` lowers to a libm call that dominates the
    // whole function's cost. Truncation rounds toward zero, so step down
    // where it rounded up (negative non-integer inputs) — an exact floor,
    // bit-identical to `t.floor()` for every in-range input.
    let t = x * DET_EXP_LOG2E + 0.5;
    let tf = t as i32 as f32;
    let k = if tf > t { tf - 1.0 } else { tf };
    // r = x − k·ln2, split high/low so the subtraction stays exact.
    let r = x - k * DET_EXP_LN2_HI - k * DET_EXP_LN2_LO;
    // e^r ≈ poly(r)·r² + r + 1, Horner order fixed.
    let mut p = DET_EXP_POLY[0];
    p = p * r + DET_EXP_POLY[1];
    p = p * r + DET_EXP_POLY[2];
    p = p * r + DET_EXP_POLY[3];
    p = p * r + DET_EXP_POLY[4];
    p = p * r + DET_EXP_POLY[5];
    let y = p * (r * r) + r + 1.0;
    // Scale by 2^k through the exponent bits (k is a small integer here;
    // the `as i32` cast saturates on the garbage inputs the doc warns
    // about, matching the SIMD truncating conversion closely enough that
    // clamped callers never observe a difference).
    y * f32::from_bits((((k as i32) + 127) << 23) as u32)
}

/// Number of piecewise-linear segments in the LUT.
pub const EXP_SEGMENTS: usize = 16;

/// Fractional bits of the fixed-point datapath.
const FRAC_BITS: u32 = 20;

/// Piecewise-linear fixed-point approximation of `e^x` over `[-5.54, 0)`.
///
/// Each segment stores a slope/intercept pair fitted as a *shifted chord*:
/// the chord between segment endpoints, lowered by half its midpoint
/// deviation, which near-halves the maximum error of a plain chord fit.
///
/// # Example
///
/// ```
/// use gcc_math::PwlExp;
/// let exp = PwlExp::new();
/// let approx = exp.eval(-1.0);
/// assert!((approx - (-1.0f32).exp()).abs() / (-1.0f32).exp() < 0.01);
/// assert_eq!(exp.eval(-9.0), 0.0); // clamped
/// assert_eq!(exp.eval(0.5), 1.0); // saturated
/// ```
#[derive(Debug, Clone)]
pub struct PwlExp {
    /// Per-segment slope in fixed point.
    slope: Vec<i32>,
    /// Per-segment intercept in fixed point.
    intercept: Vec<i32>,
    /// Segment width in input units.
    step: f32,
}

impl Default for PwlExp {
    fn default() -> Self {
        Self::new()
    }
}

impl PwlExp {
    /// Builds the 16-segment LUT used by the GCC Alpha Unit.
    pub fn new() -> Self {
        Self::with_segments(EXP_SEGMENTS)
    }

    /// Builds a LUT with a custom segment count (used by the accuracy
    /// ablation in the benches).
    ///
    /// # Panics
    ///
    /// Panics if `segments` is zero.
    pub fn with_segments(segments: usize) -> Self {
        assert!(segments > 0, "LUT needs at least one segment");
        let lo = EXP_INPUT_MIN;
        let step = -lo / segments as f32;
        let mut slope = Vec::with_capacity(segments);
        let mut intercept = Vec::with_capacity(segments);
        for i in 0..segments {
            let x0 = lo + i as f32 * step;
            let x1 = x0 + step;
            let (y0, y1) = (x0.exp(), x1.exp());
            let a = (y1 - y0) / (x1 - x0);
            // Chord intercept, then lower by half the midpoint deviation
            // (exp is convex, so the chord lies above the curve).
            let b_chord = y0 - a * x0;
            let mid = 0.5 * (x0 + x1);
            let dev = (a * mid + b_chord) - mid.exp();
            let b = b_chord - 0.5 * dev;
            slope.push(to_fixed(a, FRAC_BITS));
            intercept.push(to_fixed(b, FRAC_BITS));
        }
        Self {
            slope,
            intercept,
            step,
        }
    }

    /// Number of segments in the table.
    pub fn segments(&self) -> usize {
        self.slope.len()
    }

    /// Evaluates the LUT exponential with the hardware's clamping rules:
    /// inputs `< -5.54` produce exactly `0.0`, inputs `≥ 0` produce `1.0`.
    pub fn eval(&self, x: f32) -> f32 {
        if x < EXP_INPUT_MIN {
            return 0.0;
        }
        if x >= 0.0 {
            return 1.0;
        }
        let xf = to_fixed(x, FRAC_BITS);
        let idx = self.segment_index(x);
        let y = fixed_mul(self.slope[idx], xf, FRAC_BITS).saturating_add(self.intercept[idx]);
        from_fixed(y.max(0), FRAC_BITS)
    }

    /// Index of the segment covering input `x` (caller guarantees the range).
    fn segment_index(&self, x: f32) -> usize {
        let rel = (x - EXP_INPUT_MIN) / self.step;
        (rel as usize).min(self.slope.len() - 1)
    }

    /// Worst-case relative error against `f32::exp` over a dense sweep of
    /// the covered interval. Exposed so tests and benches can report it.
    pub fn max_relative_error(&self, samples: usize) -> f32 {
        let mut worst = 0.0f32;
        for i in 0..samples {
            let x = EXP_INPUT_MIN + (-EXP_INPUT_MIN) * (i as f32 + 0.5) / samples as f32;
            let exact = x.exp();
            let approx = self.eval(x);
            worst = worst.max((approx - exact).abs() / exact);
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_segments_meet_the_papers_error_bound() {
        let lut = PwlExp::new();
        let err = lut.max_relative_error(20_000);
        assert!(err < 0.01, "LUT error {err} exceeds the paper's 1% bound");
    }

    #[test]
    fn clamping_below_range_gives_zero() {
        let lut = PwlExp::new();
        assert_eq!(lut.eval(-5.55), 0.0);
        assert_eq!(lut.eval(-100.0), 0.0);
    }

    #[test]
    fn saturation_above_range_gives_one() {
        let lut = PwlExp::new();
        assert_eq!(lut.eval(0.0), 1.0);
        assert_eq!(lut.eval(10.0), 1.0);
    }

    #[test]
    fn output_is_monotone_up_to_fit_error() {
        // Segment boundaries may dip by at most the per-segment fit error
        // (each shifted chord is lowered by its own half-deviation), so
        // monotonicity holds up to that bound — never more.
        let lut = PwlExp::new();
        let mut prev = -1.0f32;
        for i in 0..4096 {
            let x = EXP_INPUT_MIN + (-EXP_INPUT_MIN) * i as f32 / 4095.0;
            let y = lut.eval(x - 1e-6);
            let allowed_dip = 0.01 * prev.abs() + 1e-6;
            assert!(
                y >= prev - allowed_dip,
                "dip beyond fit error at x={x}: {y} after {prev}"
            );
            prev = y;
        }
    }

    #[test]
    fn more_segments_reduce_error() {
        let coarse = PwlExp::with_segments(4).max_relative_error(5_000);
        let fine = PwlExp::with_segments(64).max_relative_error(5_000);
        assert!(fine < coarse);
    }

    #[test]
    fn boundary_value_at_range_edge_is_near_alpha_min() {
        let lut = PwlExp::new();
        // exp(-5.54) ≈ 1/255 ≈ 0.00392.
        let v = lut.eval(EXP_INPUT_MIN + 1e-4);
        assert!((v - (1.0f32 / 255.0)).abs() < 5e-4, "edge value {v}");
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn zero_segments_panics() {
        let _ = PwlExp::with_segments(0);
    }

    #[test]
    fn det_exp_tracks_libm_below_1e6_relative() {
        // The deterministic exponential must sit well inside the 1e-6
        // tolerance the alpha-datapath tests use against `f32::exp`,
        // across the whole clamped alpha domain and a margin beyond it.
        let mut worst = 0.0f32;
        for i in 0..200_000 {
            let x = -6.0 + 6.5 * (i as f32 + 0.5) / 200_000.0;
            let exact = x.exp();
            let approx = det_exp(x);
            worst = worst.max((approx - exact).abs() / exact);
        }
        assert!(worst < 1e-6, "det_exp relative error {worst}");
    }

    #[test]
    fn det_exp_is_exact_at_zero() {
        assert_eq!(det_exp(0.0).to_bits(), 1.0f32.to_bits());
    }

    #[test]
    fn det_exp_is_monotone_over_the_alpha_domain() {
        let mut prev = det_exp(EXP_INPUT_MIN - 0.1);
        for i in 0..50_000 {
            let x = -5.6 + 5.6 * i as f32 / 49_999.0;
            let y = det_exp(x);
            assert!(y >= prev, "det_exp dips at x={x}: {y} after {prev}");
            prev = y;
        }
    }
}
