//! Small dense matrices (row-major `f32`), sized for the EWA projection chain
//! Σ′ = J W Σ Wᵀ Jᵀ (paper Eq. 1).

use crate::{Vec2, Vec3, Vec4};
use std::ops::{Add, Mul, Sub};

/// 2×2 matrix, row-major.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Mat2 {
    /// Row-major entries `[[m00, m01], [m10, m11]]`.
    pub m: [[f32; 2]; 2],
}

impl Mat2 {
    /// Identity matrix.
    pub const IDENTITY: Self = Self {
        m: [[1.0, 0.0], [0.0, 1.0]],
    };

    /// Builds a matrix from rows.
    pub const fn from_rows(r0: [f32; 2], r1: [f32; 2]) -> Self {
        Self { m: [r0, r1] }
    }

    /// Determinant.
    pub fn det(&self) -> f32 {
        self.m[0][0] * self.m[1][1] - self.m[0][1] * self.m[1][0]
    }

    /// Matrix-vector product.
    pub fn mul_vec(&self, v: Vec2) -> Vec2 {
        Vec2::new(
            self.m[0][0] * v.x + self.m[0][1] * v.y,
            self.m[1][0] * v.x + self.m[1][1] * v.y,
        )
    }

    /// Transpose.
    pub fn transposed(&self) -> Self {
        Self::from_rows([self.m[0][0], self.m[1][0]], [self.m[0][1], self.m[1][1]])
    }

    /// Inverse, or `None` when the determinant magnitude is below `1e-12`.
    pub fn inverse(&self) -> Option<Self> {
        let d = self.det();
        if d.abs() < 1e-12 {
            return None;
        }
        let inv = 1.0 / d;
        Some(Self::from_rows(
            [self.m[1][1] * inv, -self.m[0][1] * inv],
            [-self.m[1][0] * inv, self.m[0][0] * inv],
        ))
    }
}

impl Mul for Mat2 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        let mut out = [[0.0f32; 2]; 2];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (0..2).map(|k| self.m[i][k] * rhs.m[k][j]).sum();
            }
        }
        Self { m: out }
    }
}

/// 3×3 matrix, row-major. Used for rotations, covariances and the EWA
/// Jacobian/view blocks.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Mat3 {
    /// Row-major entries.
    pub m: [[f32; 3]; 3],
}

impl Mat3 {
    /// Identity matrix.
    pub const IDENTITY: Self = Self {
        m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
    };

    /// Zero matrix.
    pub const ZERO: Self = Self { m: [[0.0; 3]; 3] };

    /// Builds a matrix from rows.
    pub const fn from_rows(r0: [f32; 3], r1: [f32; 3], r2: [f32; 3]) -> Self {
        Self { m: [r0, r1, r2] }
    }

    /// Diagonal matrix with diagonal `d` (e.g. the 3DGS scale matrix `S`).
    pub fn from_diagonal(d: Vec3) -> Self {
        Self::from_rows([d.x, 0.0, 0.0], [0.0, d.y, 0.0], [0.0, 0.0, d.z])
    }

    /// Matrix-vector product.
    pub fn mul_vec(&self, v: Vec3) -> Vec3 {
        Vec3::new(
            self.m[0][0] * v.x + self.m[0][1] * v.y + self.m[0][2] * v.z,
            self.m[1][0] * v.x + self.m[1][1] * v.y + self.m[1][2] * v.z,
            self.m[2][0] * v.x + self.m[2][1] * v.y + self.m[2][2] * v.z,
        )
    }

    /// Transpose.
    pub fn transposed(&self) -> Self {
        let m = &self.m;
        Self::from_rows(
            [m[0][0], m[1][0], m[2][0]],
            [m[0][1], m[1][1], m[2][1]],
            [m[0][2], m[1][2], m[2][2]],
        )
    }

    /// Determinant.
    pub fn det(&self) -> f32 {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// Inverse via the adjugate, or `None` for (near-)singular input.
    pub fn inverse(&self) -> Option<Self> {
        let d = self.det();
        if d.abs() < 1e-12 {
            return None;
        }
        let m = &self.m;
        let inv = 1.0 / d;
        let c = |a: f32, b: f32, c2: f32, d2: f32| (a * d2 - b * c2) * inv;
        Some(Self::from_rows(
            [
                c(m[1][1], m[1][2], m[2][1], m[2][2]),
                c(m[0][2], m[0][1], m[2][2], m[2][1]),
                c(m[0][1], m[0][2], m[1][1], m[1][2]),
            ],
            [
                c(m[1][2], m[1][0], m[2][2], m[2][0]),
                c(m[0][0], m[0][2], m[2][0], m[2][2]),
                c(m[0][2], m[0][0], m[1][2], m[1][0]),
            ],
            [
                c(m[1][0], m[1][1], m[2][0], m[2][1]),
                c(m[0][1], m[0][0], m[2][1], m[2][0]),
                c(m[0][0], m[0][1], m[1][0], m[1][1]),
            ],
        ))
    }

    /// Upper-left 2×2 block — the final step of Σ′ extraction in EWA
    /// splatting (the paper keeps only the 2D screen-space covariance).
    pub fn upper_left_2x2(&self) -> Mat2 {
        Mat2::from_rows([self.m[0][0], self.m[0][1]], [self.m[1][0], self.m[1][1]])
    }

    /// Frobenius norm, mostly useful in tests.
    pub fn frob_norm(&self) -> f32 {
        self.m
            .iter()
            .flat_map(|r| r.iter())
            .map(|v| v * v)
            .sum::<f32>()
            .sqrt()
    }
}

impl Mul for Mat3 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        let mut out = [[0.0f32; 3]; 3];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (0..3).map(|k| self.m[i][k] * rhs.m[k][j]).sum();
            }
        }
        Self { m: out }
    }
}

impl Add for Mat3 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        let mut out = self.m;
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell += rhs.m[i][j];
            }
        }
        Self { m: out }
    }
}

impl Sub for Mat3 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        let mut out = self.m;
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell -= rhs.m[i][j];
            }
        }
        Self { m: out }
    }
}

/// 4×4 matrix, row-major. View and projection transforms.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Mat4 {
    /// Row-major entries.
    pub m: [[f32; 4]; 4],
}

impl Mat4 {
    /// Identity matrix.
    pub const IDENTITY: Self = Self {
        m: [
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ],
    };

    /// Builds a matrix from rows.
    pub const fn from_rows(r0: [f32; 4], r1: [f32; 4], r2: [f32; 4], r3: [f32; 4]) -> Self {
        Self {
            m: [r0, r1, r2, r3],
        }
    }

    /// Homogeneous matrix-vector product.
    pub fn mul_vec(&self, v: Vec4) -> Vec4 {
        let r = |i: usize| {
            self.m[i][0] * v.x + self.m[i][1] * v.y + self.m[i][2] * v.z + self.m[i][3] * v.w
        };
        Vec4::new(r(0), r(1), r(2), r(3))
    }

    /// Transforms a 3D point (w = 1) and returns the 3D result without
    /// perspective division. This is the "view matrix transformation"
    /// producing μ′ = (x′, y′, z′) in paper Stage I.
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        self.mul_vec(p.extend(1.0)).xyz()
    }

    /// Transforms a direction vector (w = 0).
    pub fn transform_dir(&self, d: Vec3) -> Vec3 {
        self.mul_vec(d.extend(0.0)).xyz()
    }

    /// Upper-left 3×3 block (the rotation part `W` of a rigid view matrix).
    pub fn upper_left_3x3(&self) -> Mat3 {
        Mat3::from_rows(
            [self.m[0][0], self.m[0][1], self.m[0][2]],
            [self.m[1][0], self.m[1][1], self.m[1][2]],
            [self.m[2][0], self.m[2][1], self.m[2][2]],
        )
    }

    /// Transpose.
    pub fn transposed(&self) -> Self {
        let mut out = [[0.0f32; 4]; 4];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = self.m[j][i];
            }
        }
        Self { m: out }
    }

    /// Right-handed look-at view matrix (camera looks down −Z is *not*
    /// assumed; this follows the 3DGS convention where camera-space +Z is
    /// the viewing direction, so depth = z′ > 0 in front of the camera).
    pub fn look_at(eye: Vec3, target: Vec3, up: Vec3) -> Self {
        let f = (target - eye).normalized(); // forward = +z in camera space
        let r = f.cross(up).normalized(); // right = +x
        let u = f.cross(r); // down-ish = +y (image y grows downward)
        Self::from_rows(
            [r.x, r.y, r.z, -r.dot(eye)],
            [u.x, u.y, u.z, -u.dot(eye)],
            [f.x, f.y, f.z, -f.dot(eye)],
            [0.0, 0.0, 0.0, 1.0],
        )
    }
}

impl Mul for Mat4 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        let mut out = [[0.0f32; 4]; 4];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (0..4).map(|k| self.m[i][k] * rhs.m[k][j]).sum();
            }
        }
        Self { m: out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn mat3_approx(a: Mat3, b: Mat3, tol: f32) -> bool {
        (a - b).frob_norm() < tol
    }

    #[test]
    fn mat2_inverse_round_trip() {
        let a = Mat2::from_rows([2.0, 1.0], [1.0, 3.0]);
        let inv = a.inverse().unwrap();
        let id = a * inv;
        assert!(approx_eq(id.m[0][0], 1.0, 1e-5));
        assert!(approx_eq(id.m[0][1], 0.0, 1e-5));
        assert!(approx_eq(id.m[1][0], 0.0, 1e-5));
        assert!(approx_eq(id.m[1][1], 1.0, 1e-5));
    }

    #[test]
    fn mat2_singular_inverse_is_none() {
        let a = Mat2::from_rows([1.0, 2.0], [2.0, 4.0]);
        assert!(a.inverse().is_none());
    }

    #[test]
    fn mat3_inverse_round_trip() {
        let a = Mat3::from_rows([4.0, 1.0, 0.5], [1.0, 3.0, -1.0], [0.5, -1.0, 5.0]);
        let inv = a.inverse().unwrap();
        assert!(mat3_approx(a * inv, Mat3::IDENTITY, 1e-4));
        assert!(mat3_approx(inv * a, Mat3::IDENTITY, 1e-4));
    }

    #[test]
    fn mat3_det_of_diagonal() {
        let d = Mat3::from_diagonal(Vec3::new(2.0, 3.0, 4.0));
        assert!(approx_eq(d.det(), 24.0, 1e-6));
    }

    #[test]
    fn mat3_transpose_involution() {
        let a = Mat3::from_rows([1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]);
        assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn mat4_point_vs_dir_transform() {
        let t = Mat4::from_rows(
            [1.0, 0.0, 0.0, 10.0],
            [0.0, 1.0, 0.0, -5.0],
            [0.0, 0.0, 1.0, 2.0],
            [0.0, 0.0, 0.0, 1.0],
        );
        let p = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(t.transform_point(p), Vec3::new(11.0, -3.0, 5.0));
        // Directions ignore translation.
        assert_eq!(t.transform_dir(p), p);
    }

    #[test]
    fn look_at_maps_target_to_positive_depth() {
        let eye = Vec3::new(0.0, 0.0, -5.0);
        let target = Vec3::ZERO;
        let view = Mat4::look_at(eye, target, Vec3::new(0.0, 1.0, 0.0));
        let cam = view.transform_point(target);
        // Target sits straight ahead at depth 5.
        assert!(approx_eq(cam.x, 0.0, 1e-5));
        assert!(approx_eq(cam.y, 0.0, 1e-5));
        assert!(approx_eq(cam.z, 5.0, 1e-4));
        // The eye maps to the origin.
        let cam_eye = view.transform_point(eye);
        assert!(cam_eye.norm() < 1e-4);
    }

    #[test]
    fn look_at_rotation_block_is_orthonormal() {
        let view = Mat4::look_at(
            Vec3::new(3.0, 2.0, -7.0),
            Vec3::new(0.5, -1.0, 2.0),
            Vec3::new(0.0, 1.0, 0.0),
        );
        let w = view.upper_left_3x3();
        let wtw = w * w.transposed();
        assert!(mat3_approx(wtw, Mat3::IDENTITY, 1e-4));
    }

    #[test]
    fn mat4_mul_identity() {
        let t = Mat4::look_at(
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
        );
        let prod = t * Mat4::IDENTITY;
        assert_eq!(prod, t);
    }
}
