//! Unit quaternions in the 3DGS `(w, x, y, z)` convention, used to
//! parameterize each Gaussian's rotation matrix `R` (paper Eq. 1).

use crate::{Mat3, Vec3};

/// A rotation quaternion `w + xi + yj + zk`.
///
/// 3DGS stores rotations as four floats that are normalized on use; the
/// Reconstruction Unit (paper §4.3) performs the same normalize-then-expand
/// sequence implemented by [`Quat::to_mat3`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quat {
    /// Scalar part.
    pub w: f32,
    /// Vector part, i coefficient.
    pub x: f32,
    /// Vector part, j coefficient.
    pub y: f32,
    /// Vector part, k coefficient.
    pub z: f32,
}

impl Default for Quat {
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl Quat {
    /// The identity rotation.
    pub const IDENTITY: Self = Self {
        w: 1.0,
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Constructs a quaternion from components (not normalized).
    pub const fn new(w: f32, x: f32, y: f32, z: f32) -> Self {
        Self { w, x, y, z }
    }

    /// Rotation of `angle` radians about (a possibly unnormalized) `axis`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `axis` is near zero.
    pub fn from_axis_angle(axis: Vec3, angle: f32) -> Self {
        let axis = axis.normalized();
        let (s, c) = (angle * 0.5).sin_cos();
        Self::new(c, axis.x * s, axis.y * s, axis.z * s)
    }

    /// Quaternion norm.
    pub fn norm(self) -> f32 {
        (self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Returns the normalized quaternion, falling back to identity for
    /// degenerate (near-zero) input — matching the robustness of the 3DGS
    /// reference implementation.
    pub fn normalized(self) -> Self {
        let n = self.norm();
        if n < 1e-12 {
            return Self::IDENTITY;
        }
        Self::new(self.w / n, self.x / n, self.y / n, self.z / n)
    }

    /// Expands the (normalized) quaternion into a rotation matrix using the
    /// standard 3DGS formula.
    pub fn to_mat3(self) -> Mat3 {
        let q = self.normalized();
        let (w, x, y, z) = (q.w, q.x, q.y, q.z);
        Mat3::from_rows(
            [
                1.0 - 2.0 * (y * y + z * z),
                2.0 * (x * y - w * z),
                2.0 * (x * z + w * y),
            ],
            [
                2.0 * (x * y + w * z),
                1.0 - 2.0 * (x * x + z * z),
                2.0 * (y * z - w * x),
            ],
            [
                2.0 * (x * z - w * y),
                2.0 * (y * z + w * x),
                1.0 - 2.0 * (x * x + y * y),
            ],
        )
    }

    /// Hamilton product `self * rhs` (applies `rhs` first).
    pub fn hamilton(self, rhs: Self) -> Self {
        Self::new(
            self.w * rhs.w - self.x * rhs.x - self.y * rhs.y - self.z * rhs.z,
            self.w * rhs.x + self.x * rhs.w + self.y * rhs.z - self.z * rhs.y,
            self.w * rhs.y - self.x * rhs.z + self.y * rhs.w + self.z * rhs.x,
            self.w * rhs.z + self.x * rhs.y - self.y * rhs.x + self.z * rhs.w,
        )
    }

    /// Rotates a vector by this quaternion.
    pub fn rotate(self, v: Vec3) -> Vec3 {
        self.to_mat3().mul_vec(v)
    }

    /// Components as `[w, x, y, z]`.
    pub fn to_array(self) -> [f32; 4] {
        [self.w, self.x, self.y, self.z]
    }
}

impl From<[f32; 4]> for Quat {
    fn from(a: [f32; 4]) -> Self {
        Self::new(a[0], a[1], a[2], a[3])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn identity_maps_to_identity_matrix() {
        let r = Quat::IDENTITY.to_mat3();
        assert!((r - Mat3::IDENTITY).frob_norm() < 1e-6);
    }

    #[test]
    fn axis_angle_rotation_matches_expectation() {
        // 90 degrees around z maps x-axis to y-axis.
        let q = Quat::from_axis_angle(Vec3::new(0.0, 0.0, 1.0), std::f32::consts::FRAC_PI_2);
        let v = q.rotate(Vec3::new(1.0, 0.0, 0.0));
        assert!(approx_eq(v.x, 0.0, 1e-5));
        assert!(approx_eq(v.y, 1.0, 1e-5));
        assert!(approx_eq(v.z, 0.0, 1e-5));
    }

    #[test]
    fn rotation_matrix_is_orthonormal() {
        let q = Quat::new(0.3, -0.5, 0.7, 0.2);
        let r = q.to_mat3();
        let should_be_id = r * r.transposed();
        assert!((should_be_id - Mat3::IDENTITY).frob_norm() < 1e-5);
        assert!(approx_eq(r.det(), 1.0, 1e-5));
    }

    #[test]
    fn unnormalized_quaternion_is_normalized_on_use() {
        let q = Quat::new(2.0, 0.0, 0.0, 0.0);
        let r = q.to_mat3();
        assert!((r - Mat3::IDENTITY).frob_norm() < 1e-6);
    }

    #[test]
    fn degenerate_quaternion_falls_back_to_identity() {
        let q = Quat::new(0.0, 0.0, 0.0, 0.0).normalized();
        assert_eq!(q, Quat::IDENTITY);
    }

    #[test]
    fn hamilton_product_composes_rotations() {
        let a = Quat::from_axis_angle(Vec3::new(0.0, 0.0, 1.0), 0.4);
        let b = Quat::from_axis_angle(Vec3::new(0.0, 0.0, 1.0), 0.6);
        let c = a.hamilton(b);
        let direct = Quat::from_axis_angle(Vec3::new(0.0, 0.0, 1.0), 1.0);
        let v = Vec3::new(1.0, 2.0, 3.0);
        let v1 = c.rotate(v);
        let v2 = direct.rotate(v);
        assert!((v1 - v2).norm() < 1e-5);
    }
}
