//! Linear-algebra and fixed-point substrate for the GCC 3DGS accelerator
//! reproduction.
//!
//! This crate deliberately implements, from scratch, exactly the math the
//! paper's pipeline needs — no more:
//!
//! * small dense vectors and matrices ([`Vec2`], [`Vec3`], [`Vec4`],
//!   [`Mat2`], [`Mat3`], [`Mat4`]) used by the EWA projection (paper Eq. 1),
//! * unit quaternions ([`Quat`]) for the 3DGS rotation parameterization,
//! * symmetric 2×2 matrices ([`SymMat2`]) for projected covariances and
//!   conics, with closed-form eigenvalues (paper Eqs. 5–8),
//! * the Alpha Unit's fixed-point piecewise-linear exponential
//!   ([`PwlExp`], paper §4.4: a 16-segment LUT over `[-5.54, 0)` with <1%
//!   error),
//! * Q-format fixed-point helpers ([`fixed`]) backing the LUT unit.
//!
//! # Example
//!
//! ```
//! use gcc_math::{Mat3, Quat, Vec3};
//!
//! // Reconstruct a 3DGS covariance Σ = R S Sᵀ Rᵀ from scale + rotation.
//! let rot = Quat::from_axis_angle(Vec3::new(0.0, 0.0, 1.0), 0.3).to_mat3();
//! let scale = Mat3::from_diagonal(Vec3::new(0.5, 1.5, 0.2));
//! let m = rot * scale;
//! let sigma = m * m.transposed();
//! assert!((sigma - sigma.transposed()).frob_norm() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exp;
pub mod fixed;
mod mat;
mod quat;
mod sym;
mod vec;

pub use exp::PwlExp;
pub use mat::{Mat2, Mat3, Mat4};
pub use quat::Quat;
pub use sym::SymMat2;
pub use vec::{Vec2, Vec3, Vec4};

/// Relative-tolerance float comparison used across the workspace's tests.
///
/// Returns `true` when `a` and `b` differ by less than `tol` in absolute
/// terms, or by less than `tol * max(|a|, |b|)` in relative terms.
///
/// ```
/// assert!(gcc_math::approx_eq(1.0, 1.0 + 1e-7, 1e-5));
/// assert!(!gcc_math::approx_eq(1.0, 1.1, 1e-5));
/// ```
pub fn approx_eq(a: f32, b: f32, tol: f32) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute_and_relative() {
        assert!(approx_eq(0.0, 0.0, 1e-9));
        assert!(approx_eq(1e6, 1e6 + 1.0, 1e-5));
        assert!(!approx_eq(1.0, 2.0, 1e-3));
        assert!(approx_eq(-3.0, -3.0000001, 1e-6));
    }
}
