//! Long-lived worker pools — the seam that generalizes this crate beyond
//! scoped one-shot maps.
//!
//! [`par_map_indexed_with`](crate::par_map_indexed_with) spawns workers
//! for one map and joins them before returning; a serving layer instead
//! needs workers that outlive any single batch, keep their per-worker
//! state (e.g. a render scratch) across *requests*, and block on a shared
//! queue between them. [`WorkerPool`] is that primitive: `threads`
//! detached-from-scope (but joined-on-drop) workers, each owning one
//! state value built by `init`, each repeatedly calling `step(worker_id,
//! &mut state)` until `step` returns [`WorkerStep::Stop`].
//!
//! The pool itself has no queue — `step` closes over whatever shared
//! structure (mutex + condvar, channel, …) the caller schedules with, and
//! is responsible for blocking when there is no work. This keeps the pool
//! policy-free: batching, fairness and shutdown signalling live with the
//! caller, the pool only owns thread lifetime and per-worker state.
//!
//! Determinism note: like the scoped maps, which worker runs which piece
//! of work is scheduling-dependent; callers that need reproducible
//! *results* must make `step`'s output independent of the worker id and
//! of the state's carried-over contents (states are reusable scratch,
//! not accumulators).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What a [`WorkerPool`] worker should do after one `step` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerStep {
    /// Call `step` again.
    Continue,
    /// Exit this worker's loop; the thread terminates.
    Stop,
}

/// Restart budget of a supervised pool ([`WorkerPool::spawn_supervised`]):
/// a panicking worker is caught and respawned with fresh state, but only
/// `max_restarts` times per rolling `window` across the whole pool — one
/// panic past the budget *fails fast* (the worker dies and the panic
/// resurfaces at join, exactly the unsupervised behavior), so a
/// permanently broken step cannot spin the pool in a respawn loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartPolicy {
    /// Respawns allowed inside any rolling [`Self::window`] (pool-wide).
    pub max_restarts: usize,
    /// Width of the rolling restart window.
    pub window: Duration,
}

impl Default for RestartPolicy {
    /// Generous enough to ride out a fault burst, tight enough to stop a
    /// hot respawn loop: 32 restarts per 10 s window.
    fn default() -> Self {
        Self {
            max_restarts: 32,
            window: Duration::from_secs(10),
        }
    }
}

impl RestartPolicy {
    /// A policy that never respawns — every panic fails fast, matching
    /// unsupervised [`WorkerPool::spawn`] semantics.
    pub fn fail_fast() -> Self {
        Self {
            max_restarts: 0,
            window: Duration::from_secs(10),
        }
    }
}

/// Shared health counters of a pool, observable while it runs. Plain
/// [`WorkerPool::spawn`] pools keep these at zero; supervised pools
/// count every caught panic and every worker that exhausted the budget.
#[derive(Debug, Default)]
pub struct PoolHealth {
    restarts: AtomicU64,
    failed: AtomicU64,
    /// Timestamps of recent restarts, pruned to the policy window.
    recent: Mutex<VecDeque<Instant>>,
}

impl PoolHealth {
    /// Worker panics caught and answered with a fresh-state respawn.
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// Workers that died for good: a panic past the restart budget.
    pub fn failed_workers(&self) -> u64 {
        self.failed.load(Ordering::Relaxed)
    }

    /// Records one panic; `true` when the budget admits a respawn.
    fn admit_restart(&self, policy: &RestartPolicy) -> bool {
        let now = Instant::now();
        let mut recent = self.recent.lock().unwrap_or_else(|e| e.into_inner());
        while recent
            .front()
            .is_some_and(|t| now.duration_since(*t) > policy.window)
        {
            recent.pop_front();
        }
        if recent.len() >= policy.max_restarts {
            self.failed.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        recent.push_back(now);
        drop(recent);
        self.restarts.fetch_add(1, Ordering::Relaxed);
        true
    }
}

/// A pool of long-lived worker threads with per-worker state.
///
/// Dropping the pool joins every worker, so the caller **must** arrange
/// for `step` to observe a stop condition (and any blocked workers to be
/// woken) before the pool is dropped — otherwise the drop blocks forever.
/// [`WorkerPool::join`] is the explicit form of the same wait.
#[derive(Debug)]
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
    health: Arc<PoolHealth>,
}

impl WorkerPool {
    /// Spawns `threads` workers (at least one). Worker `i ∈ 0..threads`
    /// builds its own state once with `init`, then loops `step(i, &mut
    /// state)` until it returns [`WorkerStep::Stop`].
    pub fn spawn<S, I, F>(threads: usize, init: I, step: F) -> Self
    where
        S: 'static,
        I: Fn() -> S + Send + Sync + 'static,
        F: Fn(usize, &mut S) -> WorkerStep + Send + Sync + 'static,
    {
        let shared = Arc::new((init, step));
        let health = Arc::new(PoolHealth::default());
        let handles = (0..threads.max(1))
            .map(|worker| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gcc-pool-{worker}"))
                    .spawn(move || {
                        let (init, step) = &*shared;
                        let mut state = init();
                        while step(worker, &mut state) == WorkerStep::Continue {}
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self { handles, health }
    }

    /// [`Self::spawn`] with worker supervision: a panic escaping `step`
    /// is caught, reported on stderr, counted in [`PoolHealth`], and
    /// answered by rebuilding the worker's state with `init` — the
    /// worker keeps running at full pool width with fresh (scratch)
    /// state, and the panicked step's side effects are bounded by
    /// whatever cleanup guards the caller's `step` installs. The
    /// `policy` bounds respawns: one panic past `max_restarts` in a
    /// rolling `window` fails fast — the worker dies re-raising the
    /// panic, which then surfaces at [`Self::join`] like an
    /// unsupervised panic would.
    ///
    /// A panic escaping `init` itself is never caught (a pool that
    /// cannot build worker state is misconfigured, not unlucky).
    pub fn spawn_supervised<S, I, F>(
        threads: usize,
        init: I,
        step: F,
        policy: RestartPolicy,
    ) -> Self
    where
        S: 'static,
        I: Fn() -> S + Send + Sync + 'static,
        F: Fn(usize, &mut S) -> WorkerStep + Send + Sync + 'static,
    {
        let shared = Arc::new((init, step));
        let health = Arc::new(PoolHealth::default());
        let handles = (0..threads.max(1))
            .map(|worker| {
                let shared = Arc::clone(&shared);
                let health = Arc::clone(&health);
                std::thread::Builder::new()
                    .name(format!("gcc-pool-{worker}"))
                    .spawn(move || {
                        let (init, step) = &*shared;
                        let mut state = init();
                        loop {
                            // The state is rebuilt from scratch after a
                            // panic, so observing it mid-unwind is fine.
                            let outcome =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    step(worker, &mut state)
                                }));
                            match outcome {
                                Ok(WorkerStep::Continue) => {}
                                Ok(WorkerStep::Stop) => return,
                                Err(payload) => {
                                    if health.admit_restart(&policy) {
                                        eprintln!(
                                            "gcc-pool-{worker}: worker panicked \
                                             ({}); respawning with fresh state",
                                            panic_message(&payload)
                                        );
                                        state = init();
                                    } else {
                                        eprintln!(
                                            "gcc-pool-{worker}: worker panicked \
                                             ({}) past the restart budget \
                                             ({} per {:?}); failing fast",
                                            panic_message(&payload),
                                            policy.max_restarts,
                                            policy.window
                                        );
                                        std::panic::resume_unwind(payload);
                                    }
                                }
                            }
                        }
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self { handles, health }
    }

    /// The pool's shared health counters (respawns, failed workers).
    /// Cheap to clone and safe to poll while the pool runs.
    pub fn health(&self) -> Arc<PoolHealth> {
        Arc::clone(&self.health)
    }

    /// Number of worker threads.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// `true` when the pool has no workers (never, post-construction —
    /// provided for API completeness alongside [`Self::len`]).
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Waits for every worker to observe its stop condition and exit.
    /// Panics from worker threads are surfaced as a panic here.
    pub fn join(mut self) {
        self.join_all();
    }

    /// Worker threads that already terminated (normally or by a panic
    /// past the restart budget). A healthy supervised pool keeps this at
    /// zero until its stop condition is observed.
    pub fn finished_workers(&self) -> usize {
        self.handles.iter().filter(|h| h.is_finished()).count()
    }

    fn join_all(&mut self) {
        let mut panicked = false;
        for h in self.handles.drain(..) {
            if h.join().is_err() {
                panicked = true;
            }
        }
        // Surface worker panics, but never panic while already unwinding
        // (Drop during a panic must not abort the process).
        if panicked && !std::thread::panicking() {
            panic!("a worker-pool thread panicked");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.join_all();
    }
}

/// Best-effort text of a panic payload (for respawn reports).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.as_str()
    } else {
        "non-string panic payload"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Condvar, Mutex};

    #[test]
    fn workers_run_until_stop_and_keep_state() {
        // Each worker counts its own steps in per-worker state; the sum of
        // all steps is observed through a shared counter.
        let total = Arc::new(AtomicUsize::new(0));
        let t = Arc::clone(&total);
        let pool = WorkerPool::spawn(
            4,
            || 0usize,
            move |_, local| {
                *local += 1;
                t.fetch_add(1, Ordering::Relaxed);
                if *local < 25 {
                    WorkerStep::Continue
                } else {
                    WorkerStep::Stop
                }
            },
        );
        assert_eq!(pool.len(), 4);
        assert!(!pool.is_empty());
        pool.join();
        assert_eq!(total.load(Ordering::Relaxed), 4 * 25);
    }

    #[test]
    fn blocked_workers_drain_a_shared_queue_then_stop() {
        // The serve-shaped usage: a mutex+condvar queue, workers block
        // between items, a stop flag wakes and stops everyone.
        struct Q {
            items: Vec<u64>,
            stop: bool,
        }
        let shared = Arc::new((
            Mutex::new(Q {
                items: (1..=100).collect(),
                stop: false,
            }),
            Condvar::new(),
        ));
        let sum = Arc::new(AtomicUsize::new(0));
        let (s, m) = (Arc::clone(&shared), Arc::clone(&sum));
        let pool = WorkerPool::spawn(
            3,
            || (),
            move |_, ()| {
                let (lock, cv) = &*s;
                let mut q = lock.lock().unwrap();
                loop {
                    if let Some(v) = q.items.pop() {
                        drop(q);
                        m.fetch_add(v as usize, Ordering::Relaxed);
                        return WorkerStep::Continue;
                    }
                    if q.stop {
                        return WorkerStep::Stop;
                    }
                    q = cv.wait(q).unwrap();
                }
            },
        );
        // Let the queue drain, then signal stop.
        loop {
            let (lock, cv) = &*shared;
            let mut q = lock.lock().unwrap();
            if q.items.is_empty() {
                q.stop = true;
                cv.notify_all();
                break;
            }
            drop(q);
            std::thread::yield_now();
        }
        pool.join();
        assert_eq!(
            sum.load(Ordering::Relaxed),
            (1..=100u64).sum::<u64>() as usize
        );
    }

    #[test]
    fn zero_thread_request_still_gets_one_worker() {
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        let pool = WorkerPool::spawn(
            0,
            || (),
            move |_, ()| {
                r.fetch_add(1, Ordering::Relaxed);
                WorkerStep::Stop
            },
        );
        assert_eq!(pool.len(), 1);
        pool.join();
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn supervised_pool_respawns_panicked_workers_and_finishes_the_work() {
        // A mutex+condvar queue where every 5th item panics the step
        // mid-processing. Under supervision the panicking worker is
        // respawned with fresh state, so the pool still drains every
        // non-poisoned item at full width and joins cleanly.
        struct Q {
            items: Vec<u64>,
            stop: bool,
        }
        let shared = Arc::new((
            Mutex::new(Q {
                items: (1..=60).collect(),
                stop: false,
            }),
            Condvar::new(),
        ));
        let done = Arc::new(AtomicUsize::new(0));
        let (s, d) = (Arc::clone(&shared), Arc::clone(&done));
        let pool = WorkerPool::spawn_supervised(
            3,
            || 0usize,
            move |_, steps_since_respawn| {
                let (lock, cv) = &*s;
                let mut q = lock.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if let Some(v) = q.items.pop() {
                        drop(q);
                        *steps_since_respawn += 1;
                        if v % 5 == 0 {
                            panic!("poisoned item {v}");
                        }
                        d.fetch_add(1, Ordering::Relaxed);
                        return WorkerStep::Continue;
                    }
                    if q.stop {
                        return WorkerStep::Stop;
                    }
                    q = cv.wait(q).unwrap_or_else(|e| e.into_inner());
                }
            },
            RestartPolicy::default(),
        );
        let health = pool.health();
        loop {
            let (lock, cv) = &*shared;
            let mut q = lock.lock().unwrap_or_else(|e| e.into_inner());
            if q.items.is_empty() {
                q.stop = true;
                cv.notify_all();
                break;
            }
            drop(q);
            std::thread::yield_now();
        }
        pool.join();
        // 12 of the 60 items panic; the other 48 all complete.
        assert_eq!(done.load(Ordering::Relaxed), 48);
        assert_eq!(health.restarts(), 12);
        assert_eq!(health.failed_workers(), 0);
    }

    #[test]
    fn supervised_state_is_rebuilt_fresh_after_a_panic() {
        // Worker state counts steps; the first step panics after bumping
        // it. The respawned state must start from init()'s value again.
        let observed = Arc::new(Mutex::new(Vec::<usize>::new()));
        let o = Arc::clone(&observed);
        let pool = WorkerPool::spawn_supervised(
            1,
            || 0usize,
            move |_, state| {
                *state += 1;
                o.lock().unwrap_or_else(|e| e.into_inner()).push(*state);
                if *state == 1 && o.lock().unwrap_or_else(|e| e.into_inner()).len() == 1 {
                    panic!("first step dies");
                }
                if *state >= 3 {
                    WorkerStep::Stop
                } else {
                    WorkerStep::Continue
                }
            },
            RestartPolicy::default(),
        );
        let health = pool.health();
        pool.join();
        // First run reaches 1 then panics; respawn restarts at 1, 2, 3.
        assert_eq!(
            *observed.lock().unwrap_or_else(|e| e.into_inner()),
            vec![1, 1, 2, 3]
        );
        assert_eq!(health.restarts(), 1);
    }

    #[test]
    #[should_panic(expected = "worker-pool thread panicked")]
    fn supervised_pool_fails_fast_past_the_restart_budget() {
        let attempts = Arc::new(AtomicUsize::new(0));
        let a = Arc::clone(&attempts);
        let pool = WorkerPool::spawn_supervised(
            1,
            || (),
            move |_, ()| {
                a.fetch_add(1, Ordering::Relaxed);
                panic!("always broken");
            },
            RestartPolicy {
                max_restarts: 2,
                window: Duration::from_secs(60),
            },
        );
        let (health, attempts) = (pool.health(), Arc::clone(&attempts));
        // The worker dies on its third panic (2 respawns + 1 fail-fast).
        while pool.finished_workers() == 0 {
            std::thread::yield_now();
        }
        assert_eq!(attempts.load(Ordering::Relaxed), 3);
        assert_eq!(health.restarts(), 2);
        assert_eq!(health.failed_workers(), 1);
        pool.join();
    }

    #[test]
    fn fail_fast_policy_matches_unsupervised_semantics() {
        let pool = WorkerPool::spawn_supervised(
            2,
            || (),
            |w, ()| {
                if w == 0 {
                    panic!("boom");
                }
                WorkerStep::Stop
            },
            RestartPolicy::fail_fast(),
        );
        let health = pool.health();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.join()));
        assert!(caught.is_err());
        assert_eq!(health.restarts(), 0);
        assert_eq!(health.failed_workers(), 1);
    }

    #[test]
    fn unsupervised_pool_health_stays_zero() {
        let pool = WorkerPool::spawn(2, || (), |_, ()| WorkerStep::Stop);
        let health = pool.health();
        pool.join();
        assert_eq!(health.restarts(), 0);
        assert_eq!(health.failed_workers(), 0);
    }

    #[test]
    #[should_panic(expected = "worker-pool thread panicked")]
    fn worker_panics_surface_on_join() {
        let pool = WorkerPool::spawn(
            2,
            || (),
            |w, ()| {
                if w == 0 {
                    panic!("boom");
                }
                WorkerStep::Stop
            },
        );
        pool.join();
    }
}
