//! Long-lived worker pools — the seam that generalizes this crate beyond
//! scoped one-shot maps.
//!
//! [`par_map_indexed_with`](crate::par_map_indexed_with) spawns workers
//! for one map and joins them before returning; a serving layer instead
//! needs workers that outlive any single batch, keep their per-worker
//! state (e.g. a render scratch) across *requests*, and block on a shared
//! queue between them. [`WorkerPool`] is that primitive: `threads`
//! detached-from-scope (but joined-on-drop) workers, each owning one
//! state value built by `init`, each repeatedly calling `step(worker_id,
//! &mut state)` until `step` returns [`WorkerStep::Stop`].
//!
//! The pool itself has no queue — `step` closes over whatever shared
//! structure (mutex + condvar, channel, …) the caller schedules with, and
//! is responsible for blocking when there is no work. This keeps the pool
//! policy-free: batching, fairness and shutdown signalling live with the
//! caller, the pool only owns thread lifetime and per-worker state.
//!
//! Determinism note: like the scoped maps, which worker runs which piece
//! of work is scheduling-dependent; callers that need reproducible
//! *results* must make `step`'s output independent of the worker id and
//! of the state's carried-over contents (states are reusable scratch,
//! not accumulators).

use std::sync::Arc;
use std::thread::JoinHandle;

/// What a [`WorkerPool`] worker should do after one `step` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerStep {
    /// Call `step` again.
    Continue,
    /// Exit this worker's loop; the thread terminates.
    Stop,
}

/// A pool of long-lived worker threads with per-worker state.
///
/// Dropping the pool joins every worker, so the caller **must** arrange
/// for `step` to observe a stop condition (and any blocked workers to be
/// woken) before the pool is dropped — otherwise the drop blocks forever.
/// [`WorkerPool::join`] is the explicit form of the same wait.
#[derive(Debug)]
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers (at least one). Worker `i ∈ 0..threads`
    /// builds its own state once with `init`, then loops `step(i, &mut
    /// state)` until it returns [`WorkerStep::Stop`].
    pub fn spawn<S, I, F>(threads: usize, init: I, step: F) -> Self
    where
        S: 'static,
        I: Fn() -> S + Send + Sync + 'static,
        F: Fn(usize, &mut S) -> WorkerStep + Send + Sync + 'static,
    {
        let shared = Arc::new((init, step));
        let handles = (0..threads.max(1))
            .map(|worker| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gcc-pool-{worker}"))
                    .spawn(move || {
                        let (init, step) = &*shared;
                        let mut state = init();
                        while step(worker, &mut state) == WorkerStep::Continue {}
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self { handles }
    }

    /// Number of worker threads.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// `true` when the pool has no workers (never, post-construction —
    /// provided for API completeness alongside [`Self::len`]).
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Waits for every worker to observe its stop condition and exit.
    /// Panics from worker threads are surfaced as a panic here.
    pub fn join(mut self) {
        self.join_all();
    }

    fn join_all(&mut self) {
        let mut panicked = false;
        for h in self.handles.drain(..) {
            if h.join().is_err() {
                panicked = true;
            }
        }
        // Surface worker panics, but never panic while already unwinding
        // (Drop during a panic must not abort the process).
        if panicked && !std::thread::panicking() {
            panic!("a worker-pool thread panicked");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.join_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Condvar, Mutex};

    #[test]
    fn workers_run_until_stop_and_keep_state() {
        // Each worker counts its own steps in per-worker state; the sum of
        // all steps is observed through a shared counter.
        let total = Arc::new(AtomicUsize::new(0));
        let t = Arc::clone(&total);
        let pool = WorkerPool::spawn(
            4,
            || 0usize,
            move |_, local| {
                *local += 1;
                t.fetch_add(1, Ordering::Relaxed);
                if *local < 25 {
                    WorkerStep::Continue
                } else {
                    WorkerStep::Stop
                }
            },
        );
        assert_eq!(pool.len(), 4);
        assert!(!pool.is_empty());
        pool.join();
        assert_eq!(total.load(Ordering::Relaxed), 4 * 25);
    }

    #[test]
    fn blocked_workers_drain_a_shared_queue_then_stop() {
        // The serve-shaped usage: a mutex+condvar queue, workers block
        // between items, a stop flag wakes and stops everyone.
        struct Q {
            items: Vec<u64>,
            stop: bool,
        }
        let shared = Arc::new((
            Mutex::new(Q {
                items: (1..=100).collect(),
                stop: false,
            }),
            Condvar::new(),
        ));
        let sum = Arc::new(AtomicUsize::new(0));
        let (s, m) = (Arc::clone(&shared), Arc::clone(&sum));
        let pool = WorkerPool::spawn(
            3,
            || (),
            move |_, ()| {
                let (lock, cv) = &*s;
                let mut q = lock.lock().unwrap();
                loop {
                    if let Some(v) = q.items.pop() {
                        drop(q);
                        m.fetch_add(v as usize, Ordering::Relaxed);
                        return WorkerStep::Continue;
                    }
                    if q.stop {
                        return WorkerStep::Stop;
                    }
                    q = cv.wait(q).unwrap();
                }
            },
        );
        // Let the queue drain, then signal stop.
        loop {
            let (lock, cv) = &*shared;
            let mut q = lock.lock().unwrap();
            if q.items.is_empty() {
                q.stop = true;
                cv.notify_all();
                break;
            }
            drop(q);
            std::thread::yield_now();
        }
        pool.join();
        assert_eq!(
            sum.load(Ordering::Relaxed),
            (1..=100u64).sum::<u64>() as usize
        );
    }

    #[test]
    fn zero_thread_request_still_gets_one_worker() {
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        let pool = WorkerPool::spawn(
            0,
            || (),
            move |_, ()| {
                r.fetch_add(1, Ordering::Relaxed);
                WorkerStep::Stop
            },
        );
        assert_eq!(pool.len(), 1);
        pool.join();
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    #[should_panic(expected = "worker-pool thread panicked")]
    fn worker_panics_surface_on_join() {
        let pool = WorkerPool::spawn(
            2,
            || (),
            |w, ()| {
                if w == 0 {
                    panic!("boom");
                }
                WorkerStep::Stop
            },
        );
        pool.join();
    }
}
