//! Deterministic data-parallel primitives for the frame engine.
//!
//! This crate is the workspace's rayon seam: the build environment has no
//! crates.io access, so instead of `rayon` the engine runs on a minimal
//! work-stealing map built from `std::thread::scope`. The API is shaped so
//! that swapping in rayon later is a local change inside this crate.
//!
//! Two invariants matter to callers and are guaranteed here:
//!
//! * **Order preservation** — [`par_map`] returns results in input order,
//!   whatever order workers finished in, so parallel pipelines produce
//!   output streams identical to their sequential counterparts.
//! * **Determinism** — each item is processed exactly once by a pure call
//!   of the worker closure; merging is the caller's job and stays
//!   bit-for-bit reproducible as long as the caller's merge is performed
//!   in input order (associative counters, disjoint pixel patches).
//!
//! Scheduling (which worker runs which item) is *not* deterministic — only
//! the results are.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pool;

pub use pool::{PoolHealth, RestartPolicy, WorkerPool, WorkerStep};

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many worker threads a parallel stage should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Run inline on the calling thread (the reference schedule).
    Sequential,
    /// One worker per available hardware thread.
    #[default]
    Auto,
    /// Exactly this many workers.
    Fixed(NonZeroUsize),
}

impl Parallelism {
    /// Worker-thread count this policy resolves to on the current host.
    pub fn threads(self) -> usize {
        match self {
            Self::Sequential => 1,
            Self::Auto => available_threads(),
            Self::Fixed(n) => n.get(),
        }
    }

    /// Convenience constructor; `n = 0` or `1` means sequential.
    pub fn fixed(n: usize) -> Self {
        match NonZeroUsize::new(n) {
            Some(n) if n.get() > 1 => Self::Fixed(n),
            _ => Self::Sequential,
        }
    }
}

/// Hardware threads available to this process (at least 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `0..count` with `threads` workers and returns the results
/// in index order. Items are handed out through an atomic cursor, so
/// uneven item costs still balance across workers.
///
/// With `threads <= 1` (or fewer than two items) the map runs inline on
/// the calling thread — that path *is* the sequential reference schedule,
/// not an approximation of it.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
pub fn par_map_indexed<R, F>(count: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_indexed_with(count, threads, || (), |(), i| f(i))
}

/// Maps `f` over a slice with `threads` workers, preserving input order.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items.len(), threads, |i| f(&items[i]))
}

/// Like [`par_map_indexed`], but hands every worker its own reusable state
/// built by `init` — the seam that lets batch drivers (e.g. the trajectory
/// runner) thread a scratch allocation through a parallel map instead of
/// reallocating per item.
///
/// With `threads <= 1` (or fewer than two items) a single state is built
/// and the map runs inline — the sequential reference schedule. Results
/// must not depend on the state's carried-over contents (states are
/// caller-defined scratch, not accumulators): item-to-worker assignment is
/// nondeterministic.
pub fn par_map_indexed_with<S, R, G, F>(count: usize, threads: usize, init: G, f: F) -> Vec<R>
where
    R: Send,
    G: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    if threads <= 1 || count < 2 {
        let mut state = init();
        return (0..count).map(|i| f(&mut state, i)).collect();
    }
    let workers = threads.min(count);
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(count));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut state = init();
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    local.push((i, f(&mut state, i)));
                }
                if !local.is_empty() {
                    collected
                        .lock()
                        .expect("worker result mutex poisoned")
                        .append(&mut local);
                }
            });
        }
    });
    let mut pairs = collected
        .into_inner()
        .expect("worker result mutex poisoned");
    pairs.sort_unstable_by_key(|(i, _)| *i);
    debug_assert_eq!(pairs.len(), count);
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// Chunked order-preserving map: one output element per input element,
/// with contiguous chunks dispatched to workers (amortizing the per-task
/// handout for fine-grained items). The result is element-for-element
/// identical to `items.iter().enumerate().map(per_item).collect()`.
pub fn par_map_chunked<T, R, F>(items: &[T], threads: usize, per_item: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_filter_map_chunked(items, threads, |i, t| Some(per_item(i, t)))
}

/// Chunked order-preserving flat map: splits `items` into contiguous
/// chunks, maps each chunk on a worker with `per_item`, and concatenates
/// the per-chunk outputs in input order. The result is element-for-element
/// identical to `items.iter().filter_map(per_item).collect()`.
pub fn par_filter_map_chunked<T, R, F>(items: &[T], threads: usize, per_item: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> Option<R> + Sync,
{
    if threads <= 1 || items.len() < 2 {
        return items
            .iter()
            .enumerate()
            .filter_map(|(i, t)| per_item(i, t))
            .collect();
    }
    // Several chunks per worker so a dense chunk cannot straggle the map.
    let chunk = items.len().div_ceil(threads * 4).max(1);
    let chunks: Vec<(usize, &[T])> = items
        .chunks(chunk)
        .enumerate()
        .map(|(k, c)| (k * chunk, c))
        .collect();
    let mapped = par_map(&chunks, threads, |(base, c)| {
        c.iter()
            .enumerate()
            .filter_map(|(j, t)| per_item(base + j, t))
            .collect::<Vec<R>>()
    });
    let mut out = Vec::with_capacity(mapped.iter().map(Vec::len).sum());
    for mut m in mapped {
        out.append(&mut m);
    }
    out
}

/// Runs `f` over disjoint mutable chunks of `items` on `threads` workers.
/// Each call receives the chunk's element offset into `items` plus the
/// chunk itself, so position-dependent kernels (e.g. slicing a parallel
/// read-only buffer by the same offset) stay expressible. Chunk boundaries
/// depend only on `items.len()` and `threads`, and every element belongs
/// to exactly one chunk — so any `f` whose writes depend only on (offset,
/// input values) produces bit-identical buffers for every thread count.
///
/// With `threads <= 1` (or fewer than two items) `f` runs once, inline,
/// over the whole slice — the sequential reference schedule.
pub fn par_chunks_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = items.len();
    if n == 0 {
        return;
    }
    if threads <= 1 || n < 2 {
        f(0, items);
        return;
    }
    // Several chunks per worker so a slow chunk cannot straggle the map.
    let chunk = n.div_ceil(threads * 4).max(1);
    let mut parts: Vec<(usize, &mut [T])> = Vec::with_capacity(n.div_ceil(chunk));
    let mut rest = items;
    let mut offset = 0;
    while !rest.is_empty() {
        let take = chunk.min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        parts.push((offset, head));
        offset += take;
        rest = tail;
    }
    let workers = threads.min(parts.len());
    let mut per_worker: Vec<Vec<(usize, &mut [T])>> = (0..workers).map(|_| Vec::new()).collect();
    for (k, part) in parts.into_iter().enumerate() {
        per_worker[k % workers].push(part);
    }
    std::thread::scope(|scope| {
        for worker_parts in per_worker {
            let f = &f;
            scope.spawn(move || {
                for (off, part) in worker_parts {
                    f(off, part);
                }
            });
        }
    });
}

/// Radix base of the LSD sort: one byte per pass, four passes per `u32`.
const RADIX_BUCKETS: usize = 256;

/// Number of byte passes over a `u32` key.
const RADIX_PASSES: usize = 4;

/// In-place exclusive prefix sum over `counts`; returns the total. This is
/// the histogram → bucket-offset step of counting/radix sort and of CSR
/// bin construction (counts → row starts).
pub fn exclusive_prefix_sum(counts: &mut [u32]) -> u32 {
    let mut running = 0u32;
    for c in counts {
        let n = *c;
        *c = running;
        running += n;
    }
    running
}

/// All four per-byte histograms of `keys`, computed chunk-parallel: each
/// worker histograms a contiguous chunk into a local `[[u32; 256]; 4]` and
/// the partials are summed in chunk order (addition is commutative, so the
/// result is independent of scheduling).
pub fn par_radix_histograms(keys: &[u32], threads: usize) -> [[u32; RADIX_BUCKETS]; RADIX_PASSES] {
    let chunk = keys.len().div_ceil(threads.max(1)).max(1);
    let chunks: Vec<&[u32]> = keys.chunks(chunk).collect();
    let partials = par_map(&chunks, threads, |c| {
        let mut h = [[0u32; RADIX_BUCKETS]; RADIX_PASSES];
        for &k in *c {
            h[0][(k & 0xff) as usize] += 1;
            h[1][((k >> 8) & 0xff) as usize] += 1;
            h[2][((k >> 16) & 0xff) as usize] += 1;
            h[3][((k >> 24) & 0xff) as usize] += 1;
        }
        h
    });
    let mut total = [[0u32; RADIX_BUCKETS]; RADIX_PASSES];
    for h in &partials {
        for (sum, buckets) in total.iter_mut().zip(h.iter()) {
            for (s, &n) in sum.iter_mut().zip(buckets.iter()) {
                *s += n;
            }
        }
    }
    total
}

/// Stable LSD radix sort of `0..keys.len()` by `keys[i]`, ascending, into
/// caller-provided buffers (`order` receives the permutation; `scratch` is
/// the ping-pong buffer). Equal keys keep their input order — exactly the
/// tie behavior of a stable comparison sort — which is what makes the
/// global depth ordering reproduce the per-tile `sort_by` ordering
/// bit-for-bit.
///
/// Histogram construction is chunk-parallel ([`par_radix_histograms`]);
/// byte passes whose keys all share one bucket value are skipped, so
/// near-uniform key bytes (common for depth ranges) cost nothing. The
/// scatter itself is sequential: it is a single streaming pass per
/// non-degenerate byte, and its write order is what guarantees stability.
///
/// # Panics
///
/// Panics when `keys.len()` exceeds `u32::MAX` (keys are indexed by `u32`
/// throughout the frame pipeline).
pub fn radix_sort_indices_into(
    keys: &[u32],
    threads: usize,
    order: &mut Vec<u32>,
    scratch: &mut Vec<u32>,
) {
    assert!(
        u32::try_from(keys.len()).is_ok(),
        "key count {} exceeds u32 indexing",
        keys.len()
    );
    order.clear();
    order.extend(0..keys.len() as u32);
    if keys.len() < 2 {
        return;
    }
    scratch.clear();
    scratch.resize(keys.len(), 0);
    let histograms = par_radix_histograms(keys, threads);
    for (pass, mut buckets) in histograms.into_iter().enumerate() {
        // A pass where every key shares one byte value is the identity.
        if buckets.iter().any(|&n| n as usize == keys.len()) {
            continue;
        }
        let shift = 8 * pass as u32;
        exclusive_prefix_sum(&mut buckets);
        for &i in order.iter() {
            let b = ((keys[i as usize] >> shift) & 0xff) as usize;
            scratch[buckets[b] as usize] = i;
            buckets[b] += 1;
        }
        std::mem::swap(order, scratch);
    }
}

/// Convenience wrapper over [`radix_sort_indices_into`] with fresh buffers.
pub fn radix_sort_indices(keys: &[u32], threads: usize) -> Vec<u32> {
    let mut order = Vec::new();
    let mut scratch = Vec::new();
    radix_sort_indices_into(keys, threads, &mut order, &mut scratch);
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..997).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8] {
            let par = par_map(&items, threads, |x| x * x);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn par_map_indexed_handles_edge_sizes() {
        assert!(par_map_indexed(0, 4, |i| i).is_empty());
        assert_eq!(par_map_indexed(1, 4, |i| i), vec![0]);
        assert_eq!(par_map_indexed(2, 16, |i| i), vec![0, 1]);
    }

    #[test]
    fn filter_map_chunked_matches_sequential() {
        let items: Vec<i64> = (0..1234).collect();
        let seq: Vec<i64> = items
            .iter()
            .enumerate()
            .filter_map(|(i, x)| (x % 3 == 0).then_some(x * 2 + i as i64))
            .collect();
        for threads in [1, 2, 7] {
            let par = par_filter_map_chunked(&items, threads, |i, x| {
                (x % 3 == 0).then_some(x * 2 + i as i64)
            });
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn map_chunked_is_length_preserving_and_ordered() {
        let items: Vec<u32> = (0..513).collect();
        let seq: Vec<u64> = items.iter().map(|&x| u64::from(x) + 7).collect();
        for threads in [1, 3, 8] {
            let par = par_map_chunked(&items, threads, |_, &x| u64::from(x) + 7);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn parallelism_resolves_thread_counts() {
        assert_eq!(Parallelism::Sequential.threads(), 1);
        assert_eq!(Parallelism::fixed(0), Parallelism::Sequential);
        assert_eq!(Parallelism::fixed(1), Parallelism::Sequential);
        assert_eq!(Parallelism::fixed(6).threads(), 6);
        assert!(Parallelism::Auto.threads() >= 1);
    }

    #[test]
    fn per_worker_state_map_matches_stateless_map() {
        let seq: Vec<usize> = (0..311).map(|i| i * 3).collect();
        for threads in [1, 2, 6] {
            // The state is reused scratch; results must not depend on it.
            let par = par_map_indexed_with(311, threads, Vec::<usize>::new, |scratch, i| {
                scratch.push(i);
                i * 3
            });
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn par_chunks_mut_matches_sequential_for_every_thread_count() {
        // An offset-dependent write: out[i] = i * 3 + 1, expressible only
        // if the chunk offset handed to the callback is correct.
        for n in [0usize, 1, 2, 3, 63, 64, 65, 1009] {
            let mut seq: Vec<u64> = vec![0; n];
            par_chunks_mut(&mut seq, 1, |off, chunk| {
                for (j, slot) in chunk.iter_mut().enumerate() {
                    *slot = (off + j) as u64 * 3 + 1;
                }
            });
            for threads in [2, 3, 8] {
                let mut par: Vec<u64> = vec![0; n];
                par_chunks_mut(&mut par, threads, |off, chunk| {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = (off + j) as u64 * 3 + 1;
                    }
                });
                assert_eq!(par, seq, "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn exclusive_prefix_sum_offsets_and_total() {
        let mut counts = [3u32, 0, 5, 1];
        let total = exclusive_prefix_sum(&mut counts);
        assert_eq!(counts, [0, 3, 3, 8]);
        assert_eq!(total, 9);
        assert_eq!(exclusive_prefix_sum(&mut []), 0);
    }

    #[test]
    fn radix_histograms_count_every_byte_lane() {
        let keys: Vec<u32> = (0..2000)
            .map(|i| (i as u32).wrapping_mul(2654435761))
            .collect();
        for threads in [1, 3, 8] {
            let h = par_radix_histograms(&keys, threads);
            for (pass, buckets) in h.iter().enumerate() {
                let total: u32 = buckets.iter().sum();
                assert_eq!(total as usize, keys.len(), "pass {pass} threads {threads}");
            }
            // Spot-check pass 0 against a direct count.
            let direct = keys.iter().filter(|&&k| k & 0xff == 0x11).count() as u32;
            assert_eq!(h[0][0x11], direct);
        }
    }

    #[test]
    fn radix_sort_matches_stable_sort_by_key() {
        // Adversarial key set: duplicates, extremes, single-byte spreads.
        let keys: Vec<u32> = (0..4097)
            .map(|i| match i % 7 {
                0 => 0,
                1 => u32::MAX,
                2 => (i as u32).wrapping_mul(0x9E3779B9),
                3 => 42,
                4 => (i as u32) << 24,
                5 => i as u32 & 0xff,
                _ => i as u32,
            })
            .collect();
        let mut expect: Vec<u32> = (0..keys.len() as u32).collect();
        expect.sort_by_key(|&i| keys[i as usize]); // std stable sort
        for threads in [1, 2, 5] {
            let got = radix_sort_indices(&keys, threads);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn radix_sort_is_stable_on_equal_keys() {
        let keys = vec![7u32; 100];
        let order = radix_sort_indices(&keys, 4);
        assert_eq!(order, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn radix_sort_reuses_buffers_across_calls() {
        let mut order = Vec::new();
        let mut scratch = Vec::new();
        radix_sort_indices_into(&[5, 1, 9, 1], 1, &mut order, &mut scratch);
        assert_eq!(order, vec![1, 3, 0, 2]);
        // Second call on different-length input must fully reset state.
        radix_sort_indices_into(&[2, 1], 1, &mut order, &mut scratch);
        assert_eq!(order, vec![1, 0]);
        radix_sort_indices_into(&[], 1, &mut order, &mut scratch);
        assert!(order.is_empty());
        radix_sort_indices_into(&[3], 1, &mut order, &mut scratch);
        assert_eq!(order, vec![0]);
    }

    #[test]
    fn uneven_work_is_balanced_and_complete() {
        // Items with wildly different costs still all get processed once.
        let out = par_map_indexed(257, 5, |i| {
            if i % 64 == 0 {
                (0..50_000).fold(i as u64, |a, b| a.wrapping_add(b))
            } else {
                i as u64
            }
        });
        assert_eq!(out.len(), 257);
        assert_eq!(out[1], 1);
        assert_eq!(out[256], (0..50_000).fold(256u64, |a, b| a.wrapping_add(b)));
    }
}
