//! Deterministic data-parallel primitives for the frame engine.
//!
//! This crate is the workspace's rayon seam: the build environment has no
//! crates.io access, so instead of `rayon` the engine runs on a minimal
//! work-stealing map built from `std::thread::scope`. The API is shaped so
//! that swapping in rayon later is a local change inside this crate.
//!
//! Two invariants matter to callers and are guaranteed here:
//!
//! * **Order preservation** — [`par_map`] returns results in input order,
//!   whatever order workers finished in, so parallel pipelines produce
//!   output streams identical to their sequential counterparts.
//! * **Determinism** — each item is processed exactly once by a pure call
//!   of the worker closure; merging is the caller's job and stays
//!   bit-for-bit reproducible as long as the caller's merge is performed
//!   in input order (associative counters, disjoint pixel patches).
//!
//! Scheduling (which worker runs which item) is *not* deterministic — only
//! the results are.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many worker threads a parallel stage should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Run inline on the calling thread (the reference schedule).
    Sequential,
    /// One worker per available hardware thread.
    #[default]
    Auto,
    /// Exactly this many workers.
    Fixed(NonZeroUsize),
}

impl Parallelism {
    /// Worker-thread count this policy resolves to on the current host.
    pub fn threads(self) -> usize {
        match self {
            Self::Sequential => 1,
            Self::Auto => available_threads(),
            Self::Fixed(n) => n.get(),
        }
    }

    /// Convenience constructor; `n = 0` or `1` means sequential.
    pub fn fixed(n: usize) -> Self {
        match NonZeroUsize::new(n) {
            Some(n) if n.get() > 1 => Self::Fixed(n),
            _ => Self::Sequential,
        }
    }
}

/// Hardware threads available to this process (at least 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `0..count` with `threads` workers and returns the results
/// in index order. Items are handed out through an atomic cursor, so
/// uneven item costs still balance across workers.
///
/// With `threads <= 1` (or fewer than two items) the map runs inline on
/// the calling thread — that path *is* the sequential reference schedule,
/// not an approximation of it.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
pub fn par_map_indexed<R, F>(count: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if threads <= 1 || count < 2 {
        return (0..count).map(f).collect();
    }
    let workers = threads.min(count);
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(count));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    local.push((i, f(i)));
                }
                if !local.is_empty() {
                    collected
                        .lock()
                        .expect("worker result mutex poisoned")
                        .append(&mut local);
                }
            });
        }
    });
    let mut pairs = collected
        .into_inner()
        .expect("worker result mutex poisoned");
    pairs.sort_unstable_by_key(|(i, _)| *i);
    debug_assert_eq!(pairs.len(), count);
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// Maps `f` over a slice with `threads` workers, preserving input order.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items.len(), threads, |i| f(&items[i]))
}

/// Chunked order-preserving map: one output element per input element,
/// with contiguous chunks dispatched to workers (amortizing the per-task
/// handout for fine-grained items). The result is element-for-element
/// identical to `items.iter().enumerate().map(per_item).collect()`.
pub fn par_map_chunked<T, R, F>(items: &[T], threads: usize, per_item: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_filter_map_chunked(items, threads, |i, t| Some(per_item(i, t)))
}

/// Chunked order-preserving flat map: splits `items` into contiguous
/// chunks, maps each chunk on a worker with `per_item`, and concatenates
/// the per-chunk outputs in input order. The result is element-for-element
/// identical to `items.iter().filter_map(per_item).collect()`.
pub fn par_filter_map_chunked<T, R, F>(items: &[T], threads: usize, per_item: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> Option<R> + Sync,
{
    if threads <= 1 || items.len() < 2 {
        return items
            .iter()
            .enumerate()
            .filter_map(|(i, t)| per_item(i, t))
            .collect();
    }
    // Several chunks per worker so a dense chunk cannot straggle the map.
    let chunk = items.len().div_ceil(threads * 4).max(1);
    let chunks: Vec<(usize, &[T])> = items
        .chunks(chunk)
        .enumerate()
        .map(|(k, c)| (k * chunk, c))
        .collect();
    let mapped = par_map(&chunks, threads, |(base, c)| {
        c.iter()
            .enumerate()
            .filter_map(|(j, t)| per_item(base + j, t))
            .collect::<Vec<R>>()
    });
    let mut out = Vec::with_capacity(mapped.iter().map(Vec::len).sum());
    for mut m in mapped {
        out.append(&mut m);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..997).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8] {
            let par = par_map(&items, threads, |x| x * x);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn par_map_indexed_handles_edge_sizes() {
        assert!(par_map_indexed(0, 4, |i| i).is_empty());
        assert_eq!(par_map_indexed(1, 4, |i| i), vec![0]);
        assert_eq!(par_map_indexed(2, 16, |i| i), vec![0, 1]);
    }

    #[test]
    fn filter_map_chunked_matches_sequential() {
        let items: Vec<i64> = (0..1234).collect();
        let seq: Vec<i64> = items
            .iter()
            .enumerate()
            .filter_map(|(i, x)| (x % 3 == 0).then_some(x * 2 + i as i64))
            .collect();
        for threads in [1, 2, 7] {
            let par = par_filter_map_chunked(&items, threads, |i, x| {
                (x % 3 == 0).then_some(x * 2 + i as i64)
            });
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn map_chunked_is_length_preserving_and_ordered() {
        let items: Vec<u32> = (0..513).collect();
        let seq: Vec<u64> = items.iter().map(|&x| u64::from(x) + 7).collect();
        for threads in [1, 3, 8] {
            let par = par_map_chunked(&items, threads, |_, &x| u64::from(x) + 7);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn parallelism_resolves_thread_counts() {
        assert_eq!(Parallelism::Sequential.threads(), 1);
        assert_eq!(Parallelism::fixed(0), Parallelism::Sequential);
        assert_eq!(Parallelism::fixed(1), Parallelism::Sequential);
        assert_eq!(Parallelism::fixed(6).threads(), 6);
        assert!(Parallelism::Auto.threads() >= 1);
    }

    #[test]
    fn uneven_work_is_balanced_and_complete() {
        // Items with wildly different costs still all get processed once.
        let out = par_map_indexed(257, 5, |i| {
            if i % 64 == 0 {
                (0..50_000).fold(i as u64, |a, b| a.wrapping_add(b))
            } else {
                i as u64
            }
        });
        assert_eq!(out.len(), 257);
        assert_eq!(out[1], 1);
        assert_eq!(out[256], (0..50_000).fold(256u64, |a, b| a.wrapping_add(b)));
    }
}
