//! Region-of-interest correctness: an ROI render is **bit-identical** to
//! the corresponding crop of the full-frame render, for every schedule and
//! across thread counts.
//!
//! This is the contract that lets the serving layer hand out sub-frame
//! renders without a quality asterisk: the schedules keep full-frame
//! arithmetic and only restrict which work units (16×16 tiles / 8×8
//! blocks) run, so no pixel inside the ROI can differ by even an ulp.
//! Written as a seeded property loop (the in-tree proptest idiom).

use gcc_repro::render::pipeline::{FrameScratch, Parallelism};
use gcc_repro::render::{GaussianWiseRenderer, RenderJob, RenderOptions, Renderer, Roi, Schedule};
use gcc_scene::rng::StdRng;
use gcc_scene::{SceneConfig, ScenePreset};

/// Compares an ROI render to the crop of the full-frame render, bitwise.
fn assert_roi_is_crop(
    renderer: &dyn Renderer,
    label: &str,
    gaussians: &[gcc_core::Gaussian3D],
    cam: &gcc_core::Camera,
    roi: Roi,
) {
    let full = renderer.render_job(&RenderJob::new(gaussians, cam), &mut FrameScratch::new());
    let sub = renderer.render_job(
        &RenderJob::with_options(gaussians, cam, RenderOptions::default().with_roi(roi)),
        &mut FrameScratch::new(),
    );
    assert_eq!(sub.image.width(), roi.width, "{label}");
    assert_eq!(sub.image.height(), roi.height, "{label}");
    for y in 0..roi.height {
        for x in 0..roi.width {
            let want = full.image.get(roi.x0 + x, roi.y0 + y);
            let got = sub.image.get(x, y);
            assert_eq!(
                got.x.to_bits(),
                want.x.to_bits(),
                "{label}: pixel ({x},{y}) of ROI {roi:?} diverged: {got:?} vs {want:?}"
            );
            assert_eq!(got.y.to_bits(), want.y.to_bits(), "{label} ({x},{y})");
            assert_eq!(got.z.to_bits(), want.z.to_bits(), "{label} ({x},{y})");
        }
    }
}

#[test]
fn roi_renders_are_bit_identical_to_crops_for_every_schedule() {
    let scene = ScenePreset::Lego.build(&SceneConfig::with_scale(0.03));
    let mut rng = StdRng::seed_from_u64(0x5EED_0001);
    let (w, h) = scene.resolution;
    for case in 0..6 {
        let t = case as f32 / 6.0;
        let cam = scene.camera(t);
        // Random non-degenerate ROI, deliberately unaligned to tile or
        // block boundaries.
        let rw = 1 + (rng.gen::<u64>() % u64::from(w - 1)) as u32;
        let rh = 1 + (rng.gen::<u64>() % u64::from(h - 1)) as u32;
        let rx = (rng.gen::<u64>() % u64::from(w - rw + 1)) as u32;
        let ry = (rng.gen::<u64>() % u64::from(h - rh + 1)) as u32;
        let roi = Roi::new(rx, ry, rw, rh);
        for schedule in Schedule::ALL {
            for threads in [1usize, 4] {
                let renderer = schedule.renderer_with(Parallelism::fixed(threads));
                assert_roi_is_crop(
                    renderer.as_ref(),
                    &format!("{schedule} t={threads} case={case}"),
                    &scene.gaussians,
                    &cam,
                    roi,
                );
            }
        }
    }
}

#[test]
fn roi_is_crop_under_cmode_subviews_and_skip_and_block() {
    use gcc_core::boundary::MaskMode;
    use gcc_render::gaussian_wise::GaussianWiseConfig;

    let scene = ScenePreset::Palace.build(&SceneConfig::with_scale(0.02));
    let cam = scene.camera(0.4);
    let roi = Roi::new(37, 21, 90, 55);
    // Compatibility-Mode sub-views: ROI restricts at window granularity.
    let cmode = GaussianWiseRenderer::new(GaussianWiseConfig {
        subview: Some(64),
        ..GaussianWiseConfig::default()
    });
    assert_roi_is_crop(&cmode, "cmode-64", &scene.gaussians, &cam, roi);
    // SkipAndBlock gates traversal reachability through the T-mask, so the
    // ROI path falls back to full render + crop — still exactly a crop.
    let sab = GaussianWiseRenderer::new(GaussianWiseConfig {
        mask_mode: MaskMode::SkipAndBlock,
        ..GaussianWiseConfig::default()
    });
    assert_roi_is_crop(&sab, "skip-and-block", &scene.gaussians, &cam, roi);
}

#[test]
fn single_pixel_and_full_frame_rois_are_valid() {
    let scene = ScenePreset::Train.build(&SceneConfig::with_scale(0.01));
    let cam = scene.camera(0.1);
    let (w, h) = scene.resolution;
    for schedule in [Schedule::Reference, Schedule::GaussianWise] {
        let renderer = schedule.renderer();
        assert_roi_is_crop(
            renderer.as_ref(),
            &format!("{schedule} 1px"),
            &scene.gaussians,
            &cam,
            Roi::new(w / 2, h / 2, 1, 1),
        );
        assert_roi_is_crop(
            renderer.as_ref(),
            &format!("{schedule} full"),
            &scene.gaussians,
            &cam,
            Roi::new(0, 0, w, h),
        );
    }
}
