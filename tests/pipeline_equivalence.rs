//! Cross-crate integration tests: the three pipelines (GPU reference,
//! tile-wise/GSCore, Gaussian-wise/GCC) must draw the same image on every
//! scene preset, across Compatibility-Mode settings and arithmetic modes.

use gcc_render::gaussian_wise::{render_gaussian_wise, GaussianWiseConfig};
use gcc_render::quality::psnr;
use gcc_render::standard::{render_reference, render_standard, StandardConfig};
use gcc_scene::{SceneConfig, ScenePreset, ALL_PRESETS};

fn small(preset: ScenePreset) -> gcc_scene::Scene {
    preset.build(&SceneConfig::with_scale(0.06))
}

#[test]
fn gaussian_wise_matches_reference_on_all_presets() {
    for preset in ALL_PRESETS {
        let scene = small(preset);
        let cam = scene.default_camera();
        let gpu = render_reference(&scene.gaussians, &cam);
        let gcc = render_gaussian_wise(&scene.gaussians, &cam, &GaussianWiseConfig::default());
        let p = psnr(&gcc.image, &gpu.image);
        assert!(
            p > 45.0,
            "{preset}: Gaussian-wise diverges from reference ({p:.1} dB)"
        );
    }
}

#[test]
fn gscore_tile_pipeline_matches_reference_on_all_presets() {
    for preset in ALL_PRESETS {
        let scene = small(preset);
        let cam = scene.default_camera();
        let gpu = render_reference(&scene.gaussians, &cam);
        let gs = render_standard(&scene.gaussians, &cam, &StandardConfig::gscore());
        let p = psnr(&gs.image, &gpu.image);
        assert!(p > 45.0, "{preset}: OBB pipeline diverges ({p:.1} dB)");
    }
}

#[test]
fn cmode_subviews_are_image_equivalent() {
    for preset in [ScenePreset::Train, ScenePreset::Lego] {
        let scene = small(preset);
        let cam = scene.default_camera();
        let full = render_gaussian_wise(&scene.gaussians, &cam, &GaussianWiseConfig::default());
        for sub in [128u32, 64, 32] {
            let cfg = GaussianWiseConfig {
                subview: Some(sub),
                ..GaussianWiseConfig::default()
            };
            let tiled = render_gaussian_wise(&scene.gaussians, &cam, &cfg);
            let p = psnr(&tiled.image, &full.image);
            assert!(
                p > 55.0,
                "{preset}: Cmode {sub} diverges from full frame ({p:.1} dB)"
            );
        }
    }
}

#[test]
fn lut_exp_hardware_mode_stays_visually_identical() {
    let scene = small(ScenePreset::Playroom);
    let cam = scene.default_camera();
    let exact = render_gaussian_wise(&scene.gaussians, &cam, &GaussianWiseConfig::default());
    let hw = render_gaussian_wise(&scene.gaussians, &cam, &GaussianWiseConfig::gcc_hardware());
    let p = psnr(&hw.image, &exact.image);
    assert!(p > 40.0, "LUT-EXP costs too much quality ({p:.1} dB)");
}

#[test]
fn cross_stage_skipping_never_changes_the_image() {
    for preset in [ScenePreset::Drjohnson, ScenePreset::Palace] {
        let scene = small(preset);
        let cam = scene.default_camera();
        let cc = render_gaussian_wise(&scene.gaussians, &cam, &GaussianWiseConfig::default());
        let gw = render_gaussian_wise(&scene.gaussians, &cam, &GaussianWiseConfig::gw_only());
        let p = psnr(&cc.image, &gw.image);
        assert!(
            p > 45.0,
            "{preset}: cross-stage conditional changed the image ({p:.1} dB)"
        );
        // And it can only reduce SH loads.
        assert!(cc.stats.sh_loads <= gw.stats.sh_loads);
    }
}

#[test]
fn renderer_counts_agree_across_pipelines() {
    // Rendered-Gaussian counts of the two instrumented pipelines agree to
    // within the footprint-law difference (ω-σ culls faint splats that
    // the 3σ pipeline still blends at threshold strength).
    let scene = small(ScenePreset::Truck);
    let cam = scene.default_camera();
    let gs = render_standard(&scene.gaussians, &cam, &StandardConfig::gscore());
    let gc = render_gaussian_wise(&scene.gaussians, &cam, &GaussianWiseConfig::default());
    let a = gs.stats.rendered as f64;
    let b = gc.stats.rendered as f64;
    let ratio = a.max(b) / a.min(b).max(1.0);
    assert!(
        ratio < 1.35,
        "rendered counts diverge: tile {a} vs gaussian-wise {b}"
    );
}
