//! Serving-layer determinism and end-to-end residency behavior, driven
//! through the full stack: file-backed scene sources (`gcc_scene::io`),
//! the LRU scene cache, the batching worker pool, and both renderer
//! schedules.
//!
//! The load-bearing contract: a frame served by `RenderService` is
//! bit-identical to a direct `Renderer::render_frame` call with the same
//! scene and camera — batching, scratch reuse across requests, cache
//! evictions and scheduling order never leak into pixels or counters.

use std::sync::Arc;

use gcc_render::{GaussianWiseRenderer, Renderer, StandardRenderer};
use gcc_scene::{io, Scene, SceneConfig, ScenePreset};
use gcc_serve::{RenderRequest, RenderService, SceneSource, ServeConfig};

fn small(preset: ScenePreset, scale: f32) -> Scene {
    preset.build(&SceneConfig::with_scale(scale))
}

/// Registry entries plus direct copies of the scenes behind them.
type RegistryAndScenes = (Vec<(String, SceneSource)>, Vec<(String, Arc<Scene>)>);

/// Writes the scenes as on-disk files (binary and JSON alternating) and
/// returns the registry plus direct copies for reference renders.
fn file_registry(dir: &std::path::Path) -> RegistryAndScenes {
    std::fs::create_dir_all(dir).unwrap();
    let mut registry = Vec::new();
    let mut direct = Vec::new();
    for (i, (id, preset, scale)) in [
        ("lego", ScenePreset::Lego, 0.04),
        ("palace", ScenePreset::Palace, 0.04),
        ("train", ScenePreset::Train, 0.015),
    ]
    .into_iter()
    .enumerate()
    {
        let scene = small(preset, scale);
        let path = dir.join(format!("{id}.scene"));
        if i % 2 == 0 {
            io::write_binary_file(&scene, &path).unwrap();
        } else {
            io::write_json_file(&scene, &path).unwrap();
        }
        registry.push((id.to_string(), SceneSource::File(path)));
        direct.push((id.to_string(), Arc::new(scene)));
    }
    (registry, direct)
}

#[test]
fn served_frames_are_bit_identical_to_direct_renders_for_both_schedules() {
    let dir = std::env::temp_dir().join(format!("gcc_serve_parity_{}", std::process::id()));
    let (registry, direct) = file_registry(&dir);

    let schedules: Vec<Box<dyn Renderer + Send + Sync>> = vec![
        Box::new(StandardRenderer::reference()),
        Box::new(GaussianWiseRenderer::default()),
    ];
    for renderer in schedules {
        let reference: Box<dyn Renderer> = match renderer.name() {
            "standard" => Box::new(StandardRenderer::reference()),
            _ => Box::new(GaussianWiseRenderer::default()),
        };
        let service = RenderService::new(
            ServeConfig {
                workers: 3,
                max_batch: 4,
                ..ServeConfig::default()
            },
            registry.clone(),
            renderer,
        );
        // Interleave scenes and viewpoints so batches mix, then verify
        // every frame against a fresh direct render.
        let reqs: Vec<RenderRequest> = (0..9)
            .map(|i| RenderRequest {
                scene: ["lego", "palace", "train"][i % 3].to_string(),
                t: i as f32 / 9.0,
            })
            .collect();
        let handles: Vec<_> = reqs
            .iter()
            .map(|r| service.submit(r.clone()).unwrap())
            .collect();
        for (req, handle) in reqs.iter().zip(handles) {
            let frame = handle.wait().unwrap();
            let scene = &direct.iter().find(|(id, _)| *id == req.scene).unwrap().1;
            let want = reference.render_frame(&scene.gaussians, &scene.camera(req.t));
            assert_eq!(
                frame.image,
                want.image,
                "{} diverged on {}",
                reference.name(),
                req.scene
            );
            assert_eq!(frame.stats, want.stats);
        }
        let stats = service.shutdown();
        assert_eq!(stats.frames, 9);
        assert_eq!(stats.queue_depth, 0);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn eviction_churn_preserves_determinism() {
    // A budget that fits only one scene forces constant eviction between
    // interleaved requests; frames must still be bit-identical to direct
    // renders, and evictions must actually happen.
    let dir = std::env::temp_dir().join(format!("gcc_serve_churn_{}", std::process::id()));
    let (registry, direct) = file_registry(&dir);
    let max_scene_bytes = direct.iter().map(|(_, s)| s.approx_bytes()).max().unwrap();
    let service = RenderService::new(
        ServeConfig {
            workers: 2,
            cache_budget_bytes: max_scene_bytes + max_scene_bytes / 4,
            max_batch: 2,
        },
        registry,
        Box::new(StandardRenderer::reference()),
    );
    let reference = StandardRenderer::reference();
    for i in 0..8 {
        let id = ["lego", "palace", "train"][i % 3];
        let t = i as f32 / 8.0;
        let frame = service
            .render_blocking(RenderRequest {
                scene: id.into(),
                t,
            })
            .unwrap();
        let scene = &direct.iter().find(|(s, _)| s == id).unwrap().1;
        let want = reference.render_frame(&scene.gaussians, &scene.camera(t));
        assert_eq!(frame.image, want.image, "churn diverged on {id} t {t}");
    }
    let stats = service.shutdown();
    assert!(
        stats.evictions() >= 4,
        "expected churn, got {} evictions",
        stats.evictions()
    );
    assert!(stats.resident_bytes <= max_scene_bytes + max_scene_bytes / 4);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn umbrella_crate_reexports_the_serving_layer() {
    // The umbrella path must compose with the rest of the re-exports.
    let scene = Arc::new(small(ScenePreset::Lego, 0.02));
    let service = gcc_repro::serve::RenderService::new(
        gcc_repro::serve::ServeConfig {
            workers: 1,
            ..Default::default()
        },
        [(
            "lego".to_string(),
            gcc_repro::serve::SceneSource::Memory(Arc::clone(&scene)),
        )],
        Box::new(gcc_repro::render::StandardRenderer::reference()),
    );
    let frame = service
        .render_blocking(gcc_repro::serve::RenderRequest {
            scene: "lego".into(),
            t: 0.5,
        })
        .unwrap();
    let want = StandardRenderer::reference().render_frame(&scene.gaussians, &scene.camera(0.5));
    assert_eq!(frame.image, want.image);
    assert!(service.shutdown().hit_rate() < 1.0);
}
