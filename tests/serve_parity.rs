//! Serving-layer determinism and end-to-end residency behavior, driven
//! through the full stack: file-backed scene sources (`gcc_scene::io`),
//! the LRU scene cache, the batching worker pool, and the full request
//! space of the redesigned API — per-request schedules, explicit-pose
//! cameras, resolution overrides and regions of interest.
//!
//! The load-bearing contract: a frame served by `RenderService` is
//! bit-identical to a direct `Renderer::render_job` call with the same
//! scene, resolved camera and options — batching, scratch reuse across
//! requests, cache evictions and scheduling order never leak into pixels
//! or counters.

use std::sync::Arc;

use gcc_math::Vec3;
use gcc_render::pipeline::FrameScratch;
use gcc_render::{RenderJob, RenderOptions, Renderer, Roi, Schedule, StandardRenderer};
use gcc_scene::{io, Scene, SceneConfig, ScenePreset, ViewSpec};
use gcc_serve::{RenderRequest, RenderService, SceneSource, ServeConfig, StreamConfig, StreamSpec};

fn small(preset: ScenePreset, scale: f32) -> Scene {
    preset.build(&SceneConfig::with_scale(scale))
}

/// Registry entries plus direct copies of the scenes behind them.
type RegistryAndScenes = (Vec<(String, SceneSource)>, Vec<(String, Arc<Scene>)>);

/// Writes the scenes as on-disk files (binary and JSON alternating) and
/// returns the registry plus direct copies for reference renders.
fn file_registry(dir: &std::path::Path) -> RegistryAndScenes {
    std::fs::create_dir_all(dir).unwrap();
    let mut registry = Vec::new();
    let mut direct = Vec::new();
    for (i, (id, preset, scale)) in [
        ("lego", ScenePreset::Lego, 0.04),
        ("palace", ScenePreset::Palace, 0.04),
        ("train", ScenePreset::Train, 0.015),
    ]
    .into_iter()
    .enumerate()
    {
        let scene = small(preset, scale);
        let path = dir.join(format!("{id}.scene"));
        if i % 2 == 0 {
            io::write_binary_file(&scene, &path).unwrap();
        } else {
            io::write_json_file(&scene, &path).unwrap();
        }
        registry.push((id.to_string(), SceneSource::File(path)));
        direct.push((id.to_string(), Arc::new(scene)));
    }
    (registry, direct)
}

/// Renders `req` directly (fresh renderer + scratch), bypassing the
/// service — the parity reference for a served frame.
fn direct_render(scene: &Scene, req: &RenderRequest) -> gcc_render::Frame {
    let cam = scene
        .resolve_view(&req.view, &req.options)
        .expect("parity requests are valid");
    let renderer = req.options.schedule.renderer();
    renderer.render_job(
        &RenderJob::with_options(&scene.gaussians, &cam, req.options.clone()),
        &mut FrameScratch::new(),
    )
}

#[test]
fn served_frames_are_bit_identical_to_direct_renders_for_both_schedules() {
    let dir = std::env::temp_dir().join(format!("gcc_serve_parity_{}", std::process::id()));
    let (registry, direct) = file_registry(&dir);

    for schedule in [Schedule::Reference, Schedule::GaussianWise] {
        let service = RenderService::new(
            ServeConfig {
                workers: 3,
                max_batch: 4,
                ..ServeConfig::default()
            },
            registry.clone(),
        );
        // Interleave scenes and viewpoints so batches mix, then verify
        // every frame against a fresh direct render.
        let reqs: Vec<RenderRequest> = (0..9)
            .map(|i| {
                RenderRequest::trajectory(["lego", "palace", "train"][i % 3], i as f32 / 9.0)
                    .with_options(RenderOptions::default().with_schedule(schedule))
            })
            .collect();
        let handles: Vec<_> = reqs
            .iter()
            .map(|r| service.submit(r.clone()).unwrap())
            .collect();
        for (req, handle) in reqs.iter().zip(handles) {
            let frame = handle.wait().unwrap();
            let scene = &direct.iter().find(|(id, _)| *id == req.scene).unwrap().1;
            let want = direct_render(scene, req);
            assert_eq!(
                frame.image, want.image,
                "{schedule} diverged on {}",
                req.scene
            );
            assert_eq!(frame.stats, want.stats);
        }
        let stats = service.shutdown();
        assert_eq!(stats.frames, 9);
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.per_schedule[&schedule].frames, 9);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn heterogeneous_request_space_is_bit_identical_to_direct_renders() {
    // The redesigned request space end-to-end: explicit poses, orbit
    // angles, non-default resolutions, ROIs, per-request schedules,
    // background overrides and quality knobs — all through one service,
    // all bit-identical to direct renders.
    let dir = std::env::temp_dir().join(format!("gcc_serve_hetero_{}", std::process::id()));
    let (registry, direct) = file_registry(&dir);
    let service = RenderService::new(
        ServeConfig {
            workers: 3,
            max_batch: 4,
            ..ServeConfig::default()
        },
        registry,
    );

    let reqs: Vec<RenderRequest> = vec![
        // Trajectory + non-default schedule.
        RenderRequest::trajectory("lego", 0.3)
            .with_options(RenderOptions::default().with_schedule(Schedule::Gscore)),
        // Explicit pose at a non-default resolution.
        RenderRequest::new(
            "palace",
            ViewSpec::look_at(Vec3::new(3.0, 2.0, -5.0), Vec3::ZERO),
        )
        .with_options(RenderOptions::default().at_resolution(192, 108)),
        // Orbit view through the GCC hardware schedule.
        RenderRequest::new(
            "train",
            ViewSpec::Orbit {
                angle: 2.1,
                radius_scale: 1.3,
                height_offset: 0.4,
            },
        )
        .with_options(RenderOptions::default().with_schedule(Schedule::GccHardware)),
        // ROI at native resolution, Gaussian-wise.
        RenderRequest::trajectory("lego", 0.6).with_options(
            RenderOptions::default()
                .with_schedule(Schedule::GaussianWise)
                .with_roi(Roi::new(30, 20, 70, 50)),
        ),
        // ROI at an overridden resolution, standard.
        RenderRequest::trajectory("palace", 0.8).with_options(
            RenderOptions::default()
                .at_resolution(160, 120)
                .with_roi(Roi::new(40, 24, 64, 48)),
        ),
        // Background override + quality knobs.
        RenderRequest::trajectory("train", 0.1).with_options(
            RenderOptions::default()
                .on_background(Vec3::new(0.1, 0.2, 0.3))
                .with_alpha_min(0.02)
                .with_sh_degree(1),
        ),
    ];
    let handles: Vec<_> = reqs
        .iter()
        .map(|r| service.submit(r.clone()).unwrap())
        .collect();
    for (req, handle) in reqs.iter().zip(handles) {
        let frame = handle.wait().unwrap();
        let scene = &direct.iter().find(|(id, _)| *id == req.scene).unwrap().1;
        let want = direct_render(scene, req);
        assert_eq!(
            frame.image, want.image,
            "served {:?} on {} diverged from the direct render",
            req.options, req.scene
        );
        assert_eq!(frame.stats, want.stats);
        // Output shaping actually happened.
        if let Some(roi) = &req.options.roi {
            assert_eq!(frame.image.width(), roi.width);
            assert_eq!(frame.image.height(), roi.height);
        } else if let Some((w, h)) = req.options.resolution {
            assert_eq!((frame.image.width(), frame.image.height()), (w, h));
        }
    }
    let stats = service.shutdown();
    assert_eq!(stats.frames, 6);
    assert_eq!(stats.per_schedule.len(), 4, "four schedules saw traffic");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn streamed_frames_are_bit_identical_to_single_frame_submits() {
    // The session-API acceptance contract: a stream is *defined* as the
    // sequence of its views submitted one by one — same pixels, same
    // stats, bit for bit — regardless of priority class, window size,
    // worker count or how batches interleave.
    let dir = std::env::temp_dir().join(format!("gcc_serve_stream_{}", std::process::id()));
    let (registry, _) = file_registry(&dir);

    let specs: Vec<(StreamSpec, RenderOptions)> = vec![
        (
            StreamSpec::TrajectorySweep {
                t0: 0.1,
                t1: 0.9,
                frames: 6,
            },
            RenderOptions::default(),
        ),
        (
            StreamSpec::orbit(5),
            RenderOptions::default().with_schedule(Schedule::GaussianWise),
        ),
        (
            StreamSpec::ViewList(vec![
                ViewSpec::trajectory(0.4),
                ViewSpec::look_at(Vec3::new(3.0, 2.0, -5.0), Vec3::ZERO),
                ViewSpec::orbit(2.2),
            ]),
            RenderOptions::default()
                .with_schedule(Schedule::Gscore)
                .at_resolution(160, 120),
        ),
    ];

    for workers in [1usize, 3] {
        for (spec, options) in &specs {
            // Streamed, bulk priority, small window (forces refills).
            let streamed: Vec<_> = {
                let service = RenderService::new(
                    ServeConfig {
                        workers,
                        max_batch: 3,
                        ..ServeConfig::default()
                    },
                    registry.clone(),
                );
                let session = service.session("lego", options.clone()).unwrap();
                let stream = session
                    .stream_with(spec.clone(), StreamConfig::bulk().with_window(2))
                    .unwrap();
                stream.map(|r| r.expect("stream frame")).collect()
            };
            // The equivalent single-frame submit sequence.
            let submitted: Vec<_> = {
                let service = RenderService::new(
                    ServeConfig {
                        workers,
                        max_batch: 3,
                        ..ServeConfig::default()
                    },
                    registry.clone(),
                );
                let handles: Vec<_> = spec
                    .views()
                    .into_iter()
                    .map(|view| {
                        service
                            .submit(RenderRequest::new("lego", view).with_options(options.clone()))
                            .unwrap()
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.wait().expect("submitted frame"))
                    .collect()
            };
            assert_eq!(streamed.len(), submitted.len());
            for (i, (a, b)) in streamed.iter().zip(&submitted).enumerate() {
                assert_eq!(
                    a.image, b.image,
                    "frame {i} of {spec:?} diverged ({workers} workers)"
                );
                assert_eq!(a.stats, b.stats, "stats of frame {i} diverged");
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn eviction_churn_preserves_determinism() {
    // A budget that fits only one scene forces constant eviction between
    // interleaved requests; frames must still be bit-identical to direct
    // renders, and evictions must actually happen.
    let dir = std::env::temp_dir().join(format!("gcc_serve_churn_{}", std::process::id()));
    let (registry, direct) = file_registry(&dir);
    let max_scene_bytes = direct.iter().map(|(_, s)| s.approx_bytes()).max().unwrap();
    let service = RenderService::new(
        ServeConfig {
            workers: 2,
            cache_budget_bytes: max_scene_bytes + max_scene_bytes / 4,
            max_batch: 2,
            ..ServeConfig::default()
        },
        registry,
    );
    let reference = StandardRenderer::reference();
    for i in 0..8 {
        let id = ["lego", "palace", "train"][i % 3];
        let t = i as f32 / 8.0;
        let frame = service
            .render_blocking(RenderRequest::trajectory(id, t))
            .unwrap();
        let scene = &direct.iter().find(|(s, _)| s == id).unwrap().1;
        let want = reference.render_frame(&scene.gaussians, &scene.camera(t));
        assert_eq!(frame.image, want.image, "churn diverged on {id} t {t}");
    }
    let stats = service.shutdown();
    assert!(
        stats.evictions() >= 4,
        "expected churn, got {} evictions",
        stats.evictions()
    );
    assert!(stats.resident_bytes <= max_scene_bytes + max_scene_bytes / 4);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn umbrella_crate_reexports_the_serving_layer() {
    // The umbrella path must compose with the rest of the re-exports.
    let scene = Arc::new(small(ScenePreset::Lego, 0.02));
    let service = gcc_repro::serve::RenderService::new(
        gcc_repro::serve::ServeConfig {
            workers: 1,
            ..Default::default()
        },
        [(
            "lego".to_string(),
            gcc_repro::serve::SceneSource::Memory(Arc::clone(&scene)),
        )],
    );
    let frame = service
        .render_blocking(gcc_repro::serve::RenderRequest::trajectory("lego", 0.5))
        .unwrap();
    let want = StandardRenderer::reference().render_frame(&scene.gaussians, &scene.camera(0.5));
    assert_eq!(frame.image, want.image);
    assert!(service.shutdown().hit_rate() < 1.0);
}
