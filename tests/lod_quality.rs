//! Quality floors of the standard ladder, measured on the Table 2
//! scenes: every rung's render must stay within the PSNR/SSIM bounds it
//! documents (`QualityRung::{min_psnr_db, min_ssim}`) versus the
//! full-quality render of the same view. EXPERIMENTS.md ("Quality
//! ladder") records the measured deltas these floors were set from;
//! `bench_serve --lod` re-measures them on its own scene and `perf_gate`
//! refuses a record whose `quality_ok` flag fails.

use gcc_repro::lod::{attach_hierarchy, HierarchyConfig, QualityLadder, QualityRung};
use gcc_repro::render::pipeline::FrameScratch;
use gcc_repro::render::upscale::upscale_bilinear;
use gcc_repro::render::{quality, Image, RenderJob, RenderOptions, Schedule};
use gcc_repro::scene::{Scene, SceneConfig, ViewSpec, ALL_PRESETS};

/// Renders `view` the way the serve layer dispatches `rung`: knobs
/// merged into default options, camera resolved at the reduced
/// resolution, the rung's hierarchy level, filtered upscale back to the
/// scene's native frame size.
fn render_rung(
    scene: &Scene,
    rung: &QualityRung,
    view: &ViewSpec,
    scratch: &mut FrameScratch,
) -> Image {
    let target = scene.resolution;
    let options = rung.apply(&RenderOptions::default(), target);
    let cam = scene.resolve_view(view, &options).expect("view resolves");
    let gaussians = scene.lod.as_ref().map_or(&scene.gaussians[..], |l| {
        l.level_gaussians(&scene.gaussians, rung.lod_level)
    });
    let mut image = Schedule::Reference
        .renderer()
        .render_job(&RenderJob::with_options(gaussians, &cam, options), scratch)
        .image;
    if (image.width(), image.height()) != target {
        image = upscale_bilinear(&image, target.0, target.1);
    }
    image
}

#[test]
fn every_rung_meets_its_documented_floor_on_the_table2_scenes() {
    let ladder = QualityLadder::standard();
    let mut scratch = FrameScratch::new();
    let views = [ViewSpec::trajectory(0.2), ViewSpec::trajectory(0.7)];
    for preset in ALL_PRESETS {
        let mut scene = preset.build(&SceneConfig::with_scale(0.05));
        attach_hierarchy(&mut scene, &HierarchyConfig::default());
        for view in &views {
            let full = render_rung(&scene, &ladder.rungs()[0], view, &mut scratch);
            for rung in &ladder.rungs()[1..] {
                let got = render_rung(&scene, rung, view, &mut scratch);
                let psnr = quality::psnr(&got, &full);
                let ssim = quality::ssim(&got, &full);
                assert!(
                    psnr >= rung.min_psnr_db && ssim >= rung.min_ssim,
                    "{preset} rung {}: measured {psnr:.2} dB / ssim {ssim:.3} below \
                     documented floor {:.1} dB / {:.3}",
                    rung.name,
                    rung.min_psnr_db,
                    rung.min_ssim,
                );
            }
        }
    }
}

#[test]
fn the_exact_rung_is_bit_identical_to_a_plain_render() {
    let ladder = QualityLadder::standard();
    let mut scratch = FrameScratch::new();
    let mut scene = gcc_repro::scene::ScenePreset::Lego.build(&SceneConfig::with_scale(0.05));
    attach_hierarchy(&mut scene, &HierarchyConfig::default());
    let view = ViewSpec::trajectory(0.4);
    let cam = scene
        .resolve_view(&view, &RenderOptions::default())
        .unwrap();
    let plain = Schedule::Reference
        .renderer()
        .render_job(
            &RenderJob::with_options(&scene.gaussians, &cam, RenderOptions::default()),
            &mut scratch,
        )
        .image;
    let exact = render_rung(&scene, &ladder.rungs()[0], &view, &mut scratch);
    assert_eq!(exact, plain);
}
