//! Property-based tests (proptest) on the core invariants the pipeline
//! rests on: projection validity, bounding-law containment, Algorithm 1
//! exactness, compositing algebra and grouping order.

use gcc_core::alpha::{composite, PixelState};
use gcc_core::boundary::{BlockGrid, BlockTracer, MaskMode, PixelTracer};
use gcc_core::bounds::{bounding_radius, omega_sigma_extent_sq, BoundingLaw, EffectiveTest};
use gcc_core::grouping::{group_by_depth, GroupingConfig};
use gcc_core::projection::{covariance3d, project_gaussian};
use gcc_core::{Camera, Gaussian3D};
use gcc_math::{Quat, SymMat2, Vec2, Vec3};
use proptest::prelude::*;

fn camera() -> Camera {
    Camera::look_at(
        Vec3::new(0.0, 0.0, -5.0),
        Vec3::ZERO,
        Vec3::new(0.0, 1.0, 0.0),
        60.0,
        160,
        120,
    )
}

fn arb_quat() -> impl Strategy<Value = Quat> {
    (-1.0f32..1.0, -1.0f32..1.0, -1.0f32..1.0, -1.0f32..1.0)
        .prop_filter("non-degenerate", |(w, x, y, z)| {
            (w * w + x * x + y * y + z * z) > 1e-3
        })
        .prop_map(|(w, x, y, z)| Quat::new(w, x, y, z))
}

fn arb_gaussian() -> impl Strategy<Value = Gaussian3D> {
    (
        (-1.5f32..1.5, -1.0f32..1.0, -1.0f32..2.0),
        (0.01f32..0.4, 0.01f32..0.4, 0.01f32..0.4),
        arb_quat(),
        0.005f32..1.0,
    )
        .prop_map(|((x, y, z), (sx, sy, sz), q, op)| {
            Gaussian3D::new(
                Vec3::new(x, y, z),
                Vec3::new(sx, sy, sz),
                q,
                op,
                [0.0; 48],
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rotation_matrices_are_orthonormal(q in arb_quat()) {
        let r = q.to_mat3();
        let rtr = r * r.transposed();
        prop_assert!((rtr - gcc_math::Mat3::IDENTITY).frob_norm() < 1e-4);
        prop_assert!((r.det() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn covariance3d_is_symmetric_positive_semidefinite(g in arb_gaussian()) {
        let cov = covariance3d(g.scale, g.rot);
        prop_assert!((cov - cov.transposed()).frob_norm() < 1e-4);
        // PSD check via random quadratic forms.
        for v in [Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.3, -0.8, 0.5), Vec3::new(-1.0, 1.0, 1.0)] {
            let q = v.dot(cov.mul_vec(v));
            prop_assert!(q >= -1e-4, "negative quadratic form {q}");
        }
    }

    #[test]
    fn projected_covariance_is_positive_definite(g in arb_gaussian()) {
        let cam = camera();
        if let Some(p) = project_gaussian(&g, 0, &cam, BoundingLaw::ThreeSigma) {
            prop_assert!(p.cov2d.is_positive_definite());
            prop_assert!(p.conic.is_positive_definite());
            prop_assert!(p.depth >= gcc_core::NEAR_DEPTH);
            prop_assert!(p.radius > 0.0);
        }
    }

    #[test]
    fn omega_sigma_is_tighter_below_crossover(lambda in 0.1f32..100.0, op in 0.005f32..0.35) {
        let dynamic = bounding_radius(BoundingLaw::OmegaSigma, lambda, op);
        let fixed = bounding_radius(BoundingLaw::ThreeSigma, lambda, op);
        prop_assert!(dynamic <= fixed, "ω-σ {dynamic} > 3σ {fixed}");
    }

    #[test]
    fn alpha_at_omega_sigma_boundary_is_at_most_threshold(op in 0.005f32..1.0) {
        // Eq. 7/8: on the ω-σ boundary, α = 1/255 exactly (up to rounding).
        let extent = omega_sigma_extent_sq(op);
        prop_assume!(extent > 0.0);
        let alpha = (op.ln() - 0.5 * extent).exp();
        prop_assert!((alpha - 1.0 / 255.0).abs() < 1e-5);
    }

    #[test]
    fn algorithm1_matches_exhaustive_scan(
        cx in 8.0f32..56.0,
        cy in 8.0f32..56.0,
        a in 2.0f32..40.0,
        b in -8.0f32..8.0,
        c in 2.0f32..40.0,
        op in 0.01f32..1.0,
    ) {
        let cov = SymMat2::new(a, b, c);
        prop_assume!(cov.is_positive_definite());
        let conic = cov.inverse().unwrap();
        let test = EffectiveTest::new(Vec2::new(cx, cy), conic, op);
        let mut tracer = PixelTracer::new(64, 64);
        let mut out = Vec::new();
        tracer.trace(&test, &mut out);
        let mut expect = Vec::new();
        for y in 0..64 {
            for x in 0..64 {
                if test.passes(x, y) {
                    expect.push((x, y));
                }
            }
        }
        out.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn block_trace_covers_every_effective_pixel(
        cx in 4.0f32..60.0,
        cy in 4.0f32..60.0,
        a in 2.0f32..60.0,
        c in 2.0f32..60.0,
        op in 0.02f32..1.0,
    ) {
        let cov = SymMat2::new(a, a.min(c) * 0.3, c);
        prop_assume!(cov.is_positive_definite());
        let conic = cov.inverse().unwrap();
        let test = EffectiveTest::new(Vec2::new(cx, cy), conic, op);
        let grid = BlockGrid::new(8, 64, 64);
        let mut tracer = BlockTracer::new(grid);
        let mut blocks = Vec::new();
        tracer.trace(&test, None, MaskMode::Traverse, &mut blocks);
        for y in 0..64 {
            for x in 0..64 {
                if test.passes(x, y) {
                    prop_assert!(
                        blocks.contains(&grid.block_of(x, y)),
                        "effective pixel ({x},{y}) missed"
                    );
                }
            }
        }
    }

    #[test]
    fn compositing_color_is_convex_combination(
        alphas in prop::collection::vec(0.0f32..0.99, 1..30),
    ) {
        // Blending layers of unit-red: final red ∈ [0, 1], T ∈ (0, 1].
        let st = composite(alphas.iter().map(|&a| (a, Vec3::new(1.0, 0.0, 0.0))));
        prop_assert!(st.color.x >= -1e-6 && st.color.x <= 1.0 + 1e-5);
        prop_assert!(st.transmittance > 0.0 && st.transmittance <= 1.0);
        // Conservation: blended mass + remaining T = 1.
        prop_assert!((st.color.x + st.transmittance - 1.0).abs() < 1e-4);
    }

    #[test]
    fn blend_order_within_equal_alpha_layers_is_commutative_in_t(
        a1 in 0.01f32..0.9,
        a2 in 0.01f32..0.9,
    ) {
        // Transmittance is a product, hence order independent.
        let mut s1 = PixelState::new();
        s1.blend(a1, Vec3::ZERO);
        s1.blend(a2, Vec3::ZERO);
        let mut s2 = PixelState::new();
        s2.blend(a2, Vec3::ZERO);
        s2.blend(a1, Vec3::ZERO);
        prop_assert!((s1.transmittance - s2.transmittance).abs() < 1e-6);
    }

    #[test]
    fn grouping_partitions_and_orders(depths in prop::collection::vec(0.0f32..50.0, 1..3000)) {
        let groups = group_by_depth(&depths, &GroupingConfig::for_count(depths.len()));
        let mut seen = vec![false; depths.len()];
        let mut prev_min = f32::NEG_INFINITY;
        for g in groups.iter() {
            prop_assert!(g.members.len() <= gcc_core::MAX_GROUP_SIZE);
            prop_assert!(g.depth_min >= prev_min - 1e-4);
            prev_min = g.depth_min;
            for &id in &g.members {
                prop_assert!(!seen[id as usize], "duplicate member {id}");
                seen[id as usize] = true;
            }
        }
        let grouped = seen.iter().filter(|&&s| s).count();
        let culled = depths.iter().filter(|&&d| d < gcc_core::NEAR_DEPTH).count();
        prop_assert_eq!(grouped + culled, depths.len());
    }

    #[test]
    fn lut_exp_stays_within_one_percent(x in -5.54f32..-0.001) {
        let lut = gcc_math::PwlExp::new();
        let exact = x.exp();
        let approx = lut.eval(x);
        prop_assert!((approx - exact).abs() / exact < 0.01);
    }
}
