//! Property-based tests on the core invariants the pipeline rests on:
//! projection validity, bounding-law containment, Algorithm 1 exactness,
//! compositing algebra and grouping order.
//!
//! The build environment has no crates.io access, so instead of proptest
//! these properties run over a deterministic case generator built on the
//! workspace's own PRNG (`gcc_scene::rng::StdRng`) — 64 seeded cases per
//! property, failures reproducible from the fixed seed.

use gcc_core::alpha::{composite, PixelState};
use gcc_core::boundary::{BlockGrid, BlockTracer, MaskMode, PixelTracer};
use gcc_core::bounds::{bounding_radius, omega_sigma_extent_sq, BoundingLaw, EffectiveTest};
use gcc_core::grouping::{group_by_depth, GroupingConfig};
use gcc_core::projection::{covariance3d, project_gaussian};
use gcc_core::{Camera, Gaussian3D};
use gcc_math::{Quat, SymMat2, Vec2, Vec3};
use gcc_scene::rng::StdRng;

const CASES: usize = 64;

/// Runs `body` on `CASES` independently seeded generators.
fn check(test_name: &str, mut body: impl FnMut(&mut StdRng)) {
    // Derive the stream from the test name so properties don't share
    // sequences.
    let seed = test_name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
    });
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(case as u64));
        body(&mut rng);
    }
}

fn camera() -> Camera {
    Camera::look_at(
        Vec3::new(0.0, 0.0, -5.0),
        Vec3::ZERO,
        Vec3::new(0.0, 1.0, 0.0),
        60.0,
        160,
        120,
    )
}

fn arb_quat(rng: &mut StdRng) -> Quat {
    loop {
        let (w, x, y, z) = (
            rng.gen_range(-1.0f32..1.0),
            rng.gen_range(-1.0f32..1.0),
            rng.gen_range(-1.0f32..1.0),
            rng.gen_range(-1.0f32..1.0),
        );
        if w * w + x * x + y * y + z * z > 1e-3 {
            return Quat::new(w, x, y, z);
        }
    }
}

fn arb_gaussian(rng: &mut StdRng) -> Gaussian3D {
    Gaussian3D::new(
        Vec3::new(
            rng.gen_range(-1.5f32..1.5),
            rng.gen_range(-1.0f32..1.0),
            rng.gen_range(-1.0f32..2.0),
        ),
        Vec3::new(
            rng.gen_range(0.01f32..0.4),
            rng.gen_range(0.01f32..0.4),
            rng.gen_range(0.01f32..0.4),
        ),
        arb_quat(rng),
        rng.gen_range(0.005f32..1.0),
        [0.0; 48],
    )
}

#[test]
fn rotation_matrices_are_orthonormal() {
    check("rotation_matrices_are_orthonormal", |rng| {
        let q = arb_quat(rng);
        let r = q.to_mat3();
        let rtr = r * r.transposed();
        assert!((rtr - gcc_math::Mat3::IDENTITY).frob_norm() < 1e-4);
        assert!((r.det() - 1.0).abs() < 1e-4);
    });
}

#[test]
fn covariance3d_is_symmetric_positive_semidefinite() {
    check("covariance3d_is_symmetric_positive_semidefinite", |rng| {
        let g = arb_gaussian(rng);
        let cov = covariance3d(g.scale, g.rot);
        assert!((cov - cov.transposed()).frob_norm() < 1e-4);
        // PSD check via random quadratic forms.
        for v in [
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.3, -0.8, 0.5),
            Vec3::new(-1.0, 1.0, 1.0),
        ] {
            let q = v.dot(cov.mul_vec(v));
            assert!(q >= -1e-4, "negative quadratic form {q}");
        }
    });
}

#[test]
fn projected_covariance_is_positive_definite() {
    check("projected_covariance_is_positive_definite", |rng| {
        let g = arb_gaussian(rng);
        let cam = camera();
        if let Some(p) = project_gaussian(&g, 0, &cam, BoundingLaw::ThreeSigma) {
            assert!(p.cov2d.is_positive_definite());
            assert!(p.conic.is_positive_definite());
            assert!(p.depth >= gcc_core::NEAR_DEPTH);
            assert!(p.radius > 0.0);
        }
    });
}

#[test]
fn omega_sigma_is_tighter_below_crossover() {
    check("omega_sigma_is_tighter_below_crossover", |rng| {
        let lambda = rng.gen_range(0.1f32..100.0);
        let op = rng.gen_range(0.005f32..0.35);
        let dynamic = bounding_radius(BoundingLaw::OmegaSigma, lambda, op);
        let fixed = bounding_radius(BoundingLaw::ThreeSigma, lambda, op);
        assert!(dynamic <= fixed, "ω-σ {dynamic} > 3σ {fixed}");
    });
}

#[test]
fn alpha_at_omega_sigma_boundary_is_at_most_threshold() {
    check(
        "alpha_at_omega_sigma_boundary_is_at_most_threshold",
        |rng| {
            // Eq. 7/8: on the ω-σ boundary, α = 1/255 exactly (up to rounding).
            let op = rng.gen_range(0.005f32..1.0);
            let extent = omega_sigma_extent_sq(op);
            if extent <= 0.0 {
                return;
            }
            let alpha = (op.ln() - 0.5 * extent).exp();
            assert!((alpha - 1.0 / 255.0).abs() < 1e-5);
        },
    );
}

#[test]
fn algorithm1_matches_exhaustive_scan() {
    check("algorithm1_matches_exhaustive_scan", |rng| {
        let cx = rng.gen_range(8.0f32..56.0);
        let cy = rng.gen_range(8.0f32..56.0);
        let a = rng.gen_range(2.0f32..40.0);
        let b = rng.gen_range(-8.0f32..8.0);
        let c = rng.gen_range(2.0f32..40.0);
        let op = rng.gen_range(0.01f32..1.0);
        let cov = SymMat2::new(a, b, c);
        if !cov.is_positive_definite() {
            return;
        }
        let conic = cov.inverse().unwrap();
        let test = EffectiveTest::new(Vec2::new(cx, cy), conic, op);
        let mut tracer = PixelTracer::new(64, 64);
        let mut out = Vec::new();
        tracer.trace(&test, &mut out);
        let mut expect = Vec::new();
        for y in 0..64 {
            for x in 0..64 {
                if test.passes(x, y) {
                    expect.push((x, y));
                }
            }
        }
        out.sort_unstable();
        expect.sort_unstable();
        assert_eq!(out, expect);
    });
}

#[test]
fn block_trace_covers_every_effective_pixel() {
    check("block_trace_covers_every_effective_pixel", |rng| {
        let cx = rng.gen_range(4.0f32..60.0);
        let cy = rng.gen_range(4.0f32..60.0);
        let a = rng.gen_range(2.0f32..60.0);
        let c = rng.gen_range(2.0f32..60.0);
        let op = rng.gen_range(0.02f32..1.0);
        let cov = SymMat2::new(a, a.min(c) * 0.3, c);
        if !cov.is_positive_definite() {
            return;
        }
        let conic = cov.inverse().unwrap();
        let test = EffectiveTest::new(Vec2::new(cx, cy), conic, op);
        let grid = BlockGrid::new(8, 64, 64);
        let mut tracer = BlockTracer::new(grid);
        let mut blocks = Vec::new();
        tracer.trace(&test, None, MaskMode::Traverse, &mut blocks);
        for y in 0..64 {
            for x in 0..64 {
                if test.passes(x, y) {
                    assert!(
                        blocks.contains(&grid.block_of(x, y)),
                        "effective pixel ({x},{y}) missed"
                    );
                }
            }
        }
    });
}

#[test]
fn compositing_color_is_convex_combination() {
    check("compositing_color_is_convex_combination", |rng| {
        let n = rng.gen_range(1usize..30);
        let alphas: Vec<f32> = (0..n).map(|_| rng.gen_range(0.0f32..0.99)).collect();
        // Blending layers of unit-red: final red ∈ [0, 1], T ∈ (0, 1].
        let st = composite(alphas.iter().map(|&a| (a, Vec3::new(1.0, 0.0, 0.0))));
        assert!(st.color.x >= -1e-6 && st.color.x <= 1.0 + 1e-5);
        assert!(st.transmittance > 0.0 && st.transmittance <= 1.0);
        // Conservation: blended mass + remaining T = 1.
        assert!((st.color.x + st.transmittance - 1.0).abs() < 1e-4);
    });
}

#[test]
fn blend_order_within_equal_alpha_layers_is_commutative_in_t() {
    check("blend_order_commutative_in_t", |rng| {
        let a1 = rng.gen_range(0.01f32..0.9);
        let a2 = rng.gen_range(0.01f32..0.9);
        // Transmittance is a product, hence order independent.
        let mut s1 = PixelState::new();
        s1.blend(a1, Vec3::ZERO);
        s1.blend(a2, Vec3::ZERO);
        let mut s2 = PixelState::new();
        s2.blend(a2, Vec3::ZERO);
        s2.blend(a1, Vec3::ZERO);
        assert!((s1.transmittance - s2.transmittance).abs() < 1e-6);
    });
}

#[test]
fn grouping_partitions_and_orders() {
    check("grouping_partitions_and_orders", |rng| {
        let n = rng.gen_range(1usize..3000);
        let depths: Vec<f32> = (0..n).map(|_| rng.gen_range(0.0f32..50.0)).collect();
        let groups = group_by_depth(&depths, &GroupingConfig::for_count(depths.len()));
        let mut seen = vec![false; depths.len()];
        let mut prev_min = f32::NEG_INFINITY;
        for g in groups.iter() {
            assert!(g.members.len() <= gcc_core::MAX_GROUP_SIZE);
            assert!(g.depth_min >= prev_min - 1e-4);
            prev_min = g.depth_min;
            for &id in &g.members {
                assert!(!seen[id as usize], "duplicate member {id}");
                seen[id as usize] = true;
            }
        }
        let grouped = seen.iter().filter(|&&s| s).count();
        let culled = depths.iter().filter(|&&d| d < gcc_core::NEAR_DEPTH).count();
        assert_eq!(grouped + culled, depths.len());
    });
}

#[test]
fn lut_exp_stays_within_one_percent() {
    check("lut_exp_stays_within_one_percent", |rng| {
        let x = rng.gen_range(-5.54f32..-0.001);
        let lut = gcc_math::PwlExp::new();
        let exact = x.exp();
        let approx = lut.eval(x);
        assert!((approx - exact).abs() / exact < 0.01);
    });
}
