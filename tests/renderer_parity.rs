//! Renderer parity and engine determinism, driven entirely through the
//! `Renderer` trait:
//!
//! * the standard and Gaussian-wise schedules must draw visually
//!   equivalent frames on a preset scene (tight PSNR bound via
//!   `gcc_render::quality`),
//! * the parallel frame engine must reproduce the single-threaded images
//!   and statistics bit-for-bit, at every thread count, for both
//!   schedules and for trajectory batches.

use gcc_parallel::Parallelism;
use gcc_render::gaussian_wise::GaussianWiseConfig;
use gcc_render::quality::{perceptual_distance, psnr, ssim};
use gcc_render::{GaussianWiseRenderer, Renderer, StandardRenderer};
use gcc_scene::{SceneConfig, ScenePreset, TrajectoryRunner};

fn small(preset: ScenePreset) -> gcc_scene::Scene {
    preset.build(&SceneConfig::with_scale(0.06))
}

#[test]
fn schedules_are_visually_equivalent_through_the_trait() {
    let scene = small(ScenePreset::Lego);
    let cam = scene.default_camera();
    let reference = StandardRenderer::reference().render_frame(&scene.gaussians, &cam);
    let renderers: Vec<Box<dyn Renderer>> = vec![
        Box::new(StandardRenderer::gscore()),
        Box::new(GaussianWiseRenderer::default()),
        Box::new(GaussianWiseRenderer::gcc_hardware()),
    ];
    for r in &renderers {
        let frame = r.render_frame(&scene.gaussians, &cam);
        let p = psnr(&frame.image, &reference.image);
        assert!(
            p > 40.0,
            "{}: diverges from reference ({p:.1} dB)",
            r.name()
        );
        let s = ssim(&frame.image, &reference.image);
        assert!(
            s > 0.98,
            "{}: structural divergence (SSIM {s:.4})",
            r.name()
        );
        let d = perceptual_distance(&frame.image, &reference.image);
        assert!(d < 0.05, "{}: perceptual divergence ({d:.4})", r.name());
    }
}

#[test]
fn schedules_agree_on_core_stats() {
    let scene = small(ScenePreset::Truck);
    let cam = scene.default_camera();
    let tile = StandardRenderer::gscore().render_frame(&scene.gaussians, &cam);
    let gw = GaussianWiseRenderer::default().render_frame(&scene.gaussians, &cam);
    assert_eq!(tile.stats.total_gaussians, gw.stats.total_gaussians);
    // Rendered-Gaussian counts agree to within the footprint-law
    // difference (ω-σ culls faint splats the 3σ pipeline still blends at
    // threshold strength).
    let a = tile.stats.rendered as f64;
    let b = gw.stats.rendered as f64;
    let ratio = a.max(b) / a.min(b).max(1.0);
    assert!(ratio < 1.35, "rendered counts diverge: tile {a} vs gw {b}");
    // Conditional processing can only reduce memory work.
    assert!(gw.stats.geometry_loads <= tile.stats.geometry_loads);
    assert!(gw.stats.sh_loads <= tile.stats.sh_loads);
}

#[test]
fn standard_engine_is_deterministic_across_thread_counts() {
    let scene = small(ScenePreset::Train);
    let cam = scene.default_camera();
    let seq = StandardRenderer::gscore().render_frame(&scene.gaussians, &cam);
    for threads in [2, 3, 8] {
        let par = StandardRenderer::gscore()
            .with_parallelism(Parallelism::fixed(threads))
            .render_frame(&scene.gaussians, &cam);
        assert_eq!(seq.image, par.image, "threads={threads}");
        assert_eq!(seq.stats, par.stats, "threads={threads}");
    }
}

#[test]
fn gaussian_wise_engine_is_deterministic_across_thread_counts() {
    let scene = small(ScenePreset::Drjohnson);
    let cam = scene.default_camera();
    let cfg = GaussianWiseConfig {
        subview: Some(32),
        ..GaussianWiseConfig::default()
    };
    let seq = GaussianWiseRenderer::new(cfg.clone()).render_frame(&scene.gaussians, &cam);
    for threads in [2, 5] {
        let par = GaussianWiseRenderer::new(cfg.clone())
            .with_parallelism(Parallelism::fixed(threads))
            .render_frame(&scene.gaussians, &cam);
        assert_eq!(seq.image, par.image, "threads={threads}");
        assert_eq!(seq.stats, par.stats, "threads={threads}");
    }
}

#[test]
fn trajectory_batches_are_deterministic_and_schedule_agnostic() {
    let scene = small(ScenePreset::Playroom);
    let renderers: Vec<Box<dyn Renderer>> = vec![
        Box::new(StandardRenderer::reference()),
        Box::new(GaussianWiseRenderer::default()),
    ];
    for r in &renderers {
        let seq = TrajectoryRunner::new(4)
            .with_parallelism(Parallelism::Sequential)
            .run(&scene, r.as_ref());
        let par = TrajectoryRunner::new(4)
            .with_parallelism(Parallelism::fixed(3))
            .run(&scene, r.as_ref());
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.frames.iter().zip(&par.frames) {
            assert_eq!(a.image, b.image, "{}", r.name());
            assert_eq!(a.stats, b.stats, "{}", r.name());
        }
        assert_eq!(seq.aggregate_stats(), par.aggregate_stats());
    }
}
