//! Wire-protocol suite: codecs under seeded fuzz, a live server under
//! hostile framing, and end-to-end loopback parity.
//!
//! * **Seeded codec round trips** — randomized requests and responses
//!   survive encode → decode → re-encode byte-identically (the codec is
//!   deterministic, so byte equality is structural equality even for
//!   types without `PartialEq`).
//! * **Malformed frames don't kill connections** — bad version bytes,
//!   oversized declarations and unknown kinds get a typed
//!   `Response::Error` and the same connection then serves a normal
//!   request; only a truncated length prefix closes it.
//! * **Loopback parity** — an orbit streamed through a real TCP
//!   `WireServer` is bit-identical, image and stats, to the same spec
//!   delivered by an in-process `FrameStream`.
//! * **The shard proxy** routes by scene, forwards typed rejections
//!   verbatim, and fails over to the surviving backend when one dies.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use gcc_repro::math::Vec3;
use gcc_repro::render::{Frame, RenderOptions, Schedule};
use gcc_repro::scene::rng::StdRng;
use gcc_repro::scene::{Scene, SceneConfig, ScenePreset, ViewSpec};
use gcc_repro::serve::{
    Priority, RenderService, SceneSource, ServeConfig, StreamConfig, StreamSpec,
};
use gcc_repro::wire::{
    read_event, write_frame, FrameEvent, Request, Response, ShardProxy, ShardProxyConfig,
    ShardRing, WireClient, WireError, WireRejection, WireServer, WireServerConfig, WIRE_VERSION,
};

const OPTIONS_RES: (u32, u32) = (48, 36);

fn test_scene(preset: ScenePreset) -> Arc<Scene> {
    Arc::new(preset.build(&SceneConfig::with_scale(0.02)))
}

fn test_service(scenes: &[(&str, Arc<Scene>)]) -> RenderService {
    RenderService::new(
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        scenes
            .iter()
            .map(|(id, s)| (id.to_string(), SceneSource::Memory(Arc::clone(s)))),
    )
}

fn small_options() -> RenderOptions {
    RenderOptions::default()
        .with_schedule(Schedule::GaussianWise)
        .at_resolution(OPTIONS_RES.0, OPTIONS_RES.1)
}

fn assert_frames_identical(a: &Frame, b: &Frame, what: &str) {
    assert_eq!(a.image, b.image, "{what}: images diverge");
    assert_eq!(a.stats, b.stats, "{what}: stats diverge");
}

// ---------------------------------------------------------------------------
// Seeded codec fuzzing
// ---------------------------------------------------------------------------

fn random_view(rng: &mut StdRng) -> ViewSpec {
    match rng.gen_range(0usize..3) {
        0 => ViewSpec::Trajectory {
            t: rng.gen_range(0.0f32..1.0),
        },
        1 => ViewSpec::LookAt {
            eye: Vec3::new(rng.gen(), rng.gen(), rng.gen()),
            target: Vec3::new(rng.gen(), rng.gen(), rng.gen()),
            up: Vec3::new(0.0, 1.0, 0.0),
            fov_y_deg: if rng.gen::<f32>() < 0.5 {
                Some(rng.gen_range(20.0f32..90.0))
            } else {
                None
            },
        },
        _ => ViewSpec::Orbit {
            angle: rng.gen_range(0.0f32..std::f32::consts::TAU),
            radius_scale: rng.gen_range(0.5f32..2.0),
            height_offset: rng.gen_range(-0.5f32..0.5),
        },
    }
}

fn random_options(rng: &mut StdRng) -> RenderOptions {
    let mut o = RenderOptions::default()
        .with_schedule(Schedule::ALL[rng.gen_range(0usize..Schedule::ALL.len())]);
    if rng.gen::<f32>() < 0.5 {
        o = o.at_resolution(
            rng.gen_range(1usize..512) as u32,
            rng.gen_range(1usize..512) as u32,
        );
    }
    if rng.gen::<f32>() < 0.3 {
        o = o.on_background(Vec3::new(rng.gen(), rng.gen(), rng.gen()));
    }
    if rng.gen::<f32>() < 0.3 {
        o = o.with_alpha_min(rng.gen_range(0.0f32..0.1));
    }
    if rng.gen::<f32>() < 0.3 {
        o = o.with_sh_degree(rng.gen_range(0usize..4) as u8);
    }
    o
}

fn random_spec(rng: &mut StdRng) -> StreamSpec {
    match rng.gen_range(0usize..3) {
        0 => StreamSpec::TrajectorySweep {
            t0: rng.gen_range(0.0f32..0.5),
            t1: rng.gen_range(0.5f32..1.0),
            frames: rng.gen_range(1usize..64),
        },
        1 => StreamSpec::OrbitLoop {
            frames: rng.gen_range(1usize..64),
            radius_scale: rng.gen_range(0.5f32..2.0),
            height_offset: rng.gen_range(-0.5f32..0.5),
        },
        _ => StreamSpec::ViewList(
            (0..rng.gen_range(1usize..8))
                .map(|_| random_view(rng))
                .collect(),
        ),
    }
}

fn random_config(rng: &mut StdRng) -> StreamConfig {
    StreamConfig {
        priority: if rng.gen::<f32>() < 0.5 {
            Priority::Interactive
        } else {
            Priority::Bulk
        },
        deadline: if rng.gen::<f32>() < 0.5 {
            Some(Duration::from_micros(
                rng.gen_range(100usize..100_000) as u64
            ))
        } else {
            None
        },
        window: rng.gen_range(1usize..16),
    }
}

#[test]
fn seeded_requests_roundtrip_byte_identically() {
    let mut rng = StdRng::seed_from_u64(0x57D0_C0DE);
    for i in 0..200 {
        let req = match rng.gen_range(0usize..6) {
            0 => Request::Open {
                scene: format!("scene-{}", rng.gen_range(0usize..64)),
                defaults: random_options(&mut rng),
                spec: random_spec(&mut rng),
                config: random_config(&mut rng),
            },
            1 => Request::NextFrame {
                stream: rng.gen::<u64>(),
            },
            2 => Request::Cancel {
                stream: rng.gen::<u64>(),
            },
            3 => Request::Stats,
            4 => Request::Ping,
            _ => Request::Shutdown,
        };
        let (kind, payload) = req.encode();
        let back = Request::decode(kind, &payload)
            .unwrap_or_else(|e| panic!("iteration {i}: decode of {req:?} failed: {e}"));
        assert_eq!(req, back, "iteration {i}");
        // Through the transport framing too.
        let mut buf = Vec::new();
        write_frame(&mut buf, kind, &payload).unwrap();
        match read_event(&mut buf.as_slice()).unwrap() {
            FrameEvent::Frame {
                kind: k,
                payload: p,
            } => {
                assert_eq!(
                    (k, p),
                    (kind, payload),
                    "iteration {i}: framing changed bytes"
                );
            }
            other => panic!("iteration {i}: expected a frame, got {other:?}"),
        }
    }
}

#[test]
fn seeded_rejections_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xBAD_5EED);
    for i in 0..200 {
        let rej = match rng.gen_range(0usize..9) {
            0 => WireRejection::UnknownScene(format!("s{}", rng.gen::<u64>())),
            1 => WireRejection::InvalidRequest("t out of range".into()),
            2 => WireRejection::EmptyStream,
            3 => WireRejection::Load {
                scene: "palace".into(),
                message: format!("io error {}", rng.gen::<u64>()),
            },
            4 => WireRejection::ShuttingDown,
            5 => WireRejection::WorkerPanicked,
            6 => WireRejection::Quarantined {
                scene: "lego".into(),
                retry_after: Duration::from_nanos(rng.gen::<u64>() >> 1),
            },
            7 => WireRejection::Overloaded {
                retry_after: Duration::from_nanos(rng.gen::<u64>() >> 1),
            },
            _ => WireRejection::Unavailable {
                message: "backend down".into(),
                retry_after: Duration::from_millis(rng.gen_range(0usize..10_000) as u64),
            },
        };
        let (kind, payload) = Response::Rejected(rej.clone()).encode();
        match Response::decode(kind, &payload) {
            Ok(Response::Rejected(back)) => assert_eq!(rej, back, "iteration {i}"),
            other => panic!("iteration {i}: decoded {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Hostile framing against a live server
// ---------------------------------------------------------------------------

fn call_raw(stream: &mut TcpStream, req: &Request) -> Response {
    let (kind, payload) = req.encode();
    write_frame(stream, kind, &payload).expect("write");
    match read_event(stream).expect("read") {
        FrameEvent::Frame { kind, payload } => Response::decode(kind, &payload).expect("decode"),
        other => panic!("expected a response frame, got {other:?}"),
    }
}

#[test]
fn malformed_frames_get_typed_errors_and_the_connection_survives() {
    let scene = test_scene(ScenePreset::Lego);
    let server = WireServer::bind(
        "127.0.0.1:0",
        test_service(&[("lego", scene)]),
        WireServerConfig::default(),
    )
    .expect("bind");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");

    // 1. A frame with a corrupt version byte: typed error, then life
    //    goes on.
    let (kind, payload) = Request::Ping.encode();
    let mut raw = Vec::new();
    write_frame(&mut raw, kind, &payload).unwrap();
    raw[4] = WIRE_VERSION.wrapping_add(7);
    use std::io::Write as _;
    stream.write_all(&raw).unwrap();
    match read_event(&mut stream).expect("read") {
        FrameEvent::Frame { kind, payload } => {
            match Response::decode(kind, &payload).expect("decode") {
                Response::Error { message } => {
                    assert!(
                        message.contains("version"),
                        "unexpected message {message:?}"
                    );
                }
                other => panic!("expected Error, got {other:?}"),
            }
        }
        other => panic!("expected a response, got {other:?}"),
    }

    // 2. An unknown request kind: typed error, connection survives.
    write_frame(&mut stream, 0x7F, b"junk").unwrap();
    match read_event(&mut stream).expect("read") {
        FrameEvent::Frame { kind, payload } => {
            match Response::decode(kind, &payload).expect("decode") {
                Response::Error { message } => {
                    assert!(message.contains("kind"), "unexpected message {message:?}");
                }
                other => panic!("expected Error, got {other:?}"),
            }
        }
        other => panic!("expected a response, got {other:?}"),
    }

    // 3. A truncated Open payload: typed error, connection survives.
    let (kind, payload) = Request::Open {
        scene: "lego".into(),
        defaults: RenderOptions::default(),
        spec: StreamSpec::orbit(4),
        config: StreamConfig::default(),
    }
    .encode();
    write_frame(&mut stream, kind, &payload[..payload.len() / 2]).unwrap();
    match read_event(&mut stream).expect("read") {
        FrameEvent::Frame { kind, payload } => {
            assert!(matches!(
                Response::decode(kind, &payload).expect("decode"),
                Response::Error { .. }
            ));
        }
        other => panic!("expected a response, got {other:?}"),
    }

    // 4. The same connection still serves real traffic.
    assert!(matches!(
        call_raw(&mut stream, &Request::Ping),
        Response::Pong
    ));
    match call_raw(
        &mut stream,
        &Request::Open {
            scene: "lego".into(),
            defaults: small_options(),
            spec: StreamSpec::orbit(2),
            config: StreamConfig::default(),
        },
    ) {
        Response::Opened { frames: 2, .. } => {}
        other => panic!("expected Opened, got {other:?}"),
    }

    drop(stream);
    server.shutdown();
}

#[test]
fn oversized_declarations_are_rejected_without_matching_allocation() {
    let scene = test_scene(ScenePreset::Lego);
    let server = WireServer::bind(
        "127.0.0.1:0",
        test_service(&[("lego", scene)]),
        WireServerConfig::default(),
    )
    .expect("bind");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");

    // Declare an over-the-ceiling frame, then actually send that many
    // bytes: the server drains and answers a typed error rather than
    // allocating the declared length or dropping the connection.
    let declared: u32 = gcc_repro::wire::MAX_FRAME_LEN + 16;
    use std::io::Write as _;
    stream.write_all(&declared.to_le_bytes()).unwrap();
    let chunk = vec![0u8; 1 << 16];
    let mut remaining = declared as usize;
    while remaining > 0 {
        let take = remaining.min(chunk.len());
        stream.write_all(&chunk[..take]).unwrap();
        remaining -= take;
    }
    match read_event(&mut stream).expect("read") {
        FrameEvent::Frame { kind, payload } => {
            match Response::decode(kind, &payload).expect("decode") {
                Response::Error { message } => {
                    assert!(
                        message.contains("ceiling"),
                        "unexpected message {message:?}"
                    );
                }
                other => panic!("expected Error, got {other:?}"),
            }
        }
        other => panic!("expected a response, got {other:?}"),
    }
    assert!(matches!(
        call_raw(&mut stream, &Request::Ping),
        Response::Pong
    ));

    drop(stream);
    server.shutdown();
}

// ---------------------------------------------------------------------------
// End-to-end loopback parity
// ---------------------------------------------------------------------------

#[test]
fn wire_orbit_is_bit_identical_to_in_process_delivery() {
    let scene = test_scene(ScenePreset::Palace);
    let spec = StreamSpec::orbit(6);
    let config = StreamConfig::default()
        .with_priority(Priority::Interactive)
        .with_deadline(Duration::from_millis(250))
        .with_window(3);

    // In-process reference: a FrameStream on its own service.
    let reference = test_service(&[("palace", Arc::clone(&scene))]);
    let mut direct = reference
        .session("palace", small_options())
        .expect("session")
        .stream_with(spec.clone(), config)
        .expect("stream");
    let mut expected = Vec::new();
    while let Some(next) = direct.next_frame() {
        expected.push(next.expect("direct frame"));
    }
    reference.shutdown();

    // The same spec through a real TCP server.
    let server = WireServer::bind(
        "127.0.0.1:0",
        test_service(&[("palace", scene)]),
        WireServerConfig::default(),
    )
    .expect("bind");
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    let mut remote = client
        .open("palace", small_options(), spec, config)
        .expect("open");
    assert_eq!(remote.len(), expected.len() as u64);
    let mut got = Vec::new();
    while let Some(frame) = client.next_frame(&mut remote).expect("pull") {
        got.push(frame);
    }
    assert!(remote.is_done());
    assert_eq!(got.len(), expected.len());
    for (i, (wire, direct)) in got.iter().zip(&expected).enumerate() {
        assert_frames_identical(wire, direct, &format!("frame {i}"));
    }

    // Stats crossed the wire too: the server counted this stream.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.streams.opened, 1);
    assert_eq!(stats.frames, expected.len() as u64);

    let final_stats = server.shutdown();
    assert_eq!(final_stats.streams.completed, 1);
}

#[test]
fn typed_rejections_cross_the_wire() {
    let scene = test_scene(ScenePreset::Lego);
    let server = WireServer::bind(
        "127.0.0.1:0",
        test_service(&[("lego", scene)]),
        WireServerConfig::default(),
    )
    .expect("bind");
    let mut client = WireClient::connect(server.local_addr()).expect("connect");

    match client.open(
        "atlantis",
        RenderOptions::default(),
        StreamSpec::orbit(2),
        StreamConfig::default(),
    ) {
        Err(WireError::Rejected(WireRejection::UnknownScene(s))) => assert_eq!(s, "atlantis"),
        other => panic!("expected UnknownScene, got {other:?}"),
    }
    match client.open(
        "lego",
        RenderOptions::default(),
        StreamSpec::ViewList(Vec::new()),
        StreamConfig::default(),
    ) {
        Err(WireError::Rejected(WireRejection::EmptyStream)) => {}
        other => panic!("expected EmptyStream, got {other:?}"),
    }
    match client.open(
        "lego",
        RenderOptions::default(),
        StreamSpec::TrajectorySweep {
            t0: 0.0,
            t1: 7.0,
            frames: 3,
        },
        StreamConfig::default(),
    ) {
        Err(WireError::Rejected(WireRejection::InvalidRequest(_))) => {}
        other => panic!("expected InvalidRequest, got {other:?}"),
    }

    // Cancellation mid-stream: delivered frames stop, the ack is
    // idempotent, and the server keeps serving.
    let mut remote = client
        .open(
            "lego",
            small_options(),
            StreamSpec::orbit(8),
            StreamConfig::default(),
        )
        .expect("open");
    let first = client.next_frame(&mut remote).expect("pull");
    assert!(first.is_some());
    client.cancel(&mut remote).expect("cancel");
    client.cancel(&mut remote).expect("cancel twice");
    assert!(client
        .next_frame(&mut remote)
        .expect("post-cancel pull")
        .is_none());
    client.ping().expect("ping after cancel");

    server.shutdown();
}

// ---------------------------------------------------------------------------
// The shard proxy
// ---------------------------------------------------------------------------

#[test]
fn shard_proxy_routes_fails_over_and_forwards_rejections() {
    let lego = test_scene(ScenePreset::Lego);
    let palace = test_scene(ScenePreset::Palace);
    // Both backends register both scenes — the ring decides ownership,
    // and failover needs the survivor to be able to serve either.
    let scenes = [("lego", Arc::clone(&lego)), ("palace", Arc::clone(&palace))];
    let mut backends: Vec<Option<WireServer>> = (0..2)
        .map(|_| {
            Some(
                WireServer::bind(
                    "127.0.0.1:0",
                    test_service(&scenes),
                    WireServerConfig::default(),
                )
                .expect("bind backend"),
            )
        })
        .collect();
    let addrs: Vec<_> = backends
        .iter()
        .map(|b| b.as_ref().unwrap().local_addr())
        .collect();

    let proxy = ShardProxy::bind(
        "127.0.0.1:0",
        addrs,
        ShardProxyConfig {
            probe_interval: Duration::from_millis(50),
            ..ShardProxyConfig::default()
        },
    )
    .expect("bind proxy");
    let mut client = WireClient::connect(proxy.local_addr()).expect("connect");

    // Streams for both scenes resolve through the proxy, bit-identical
    // to a direct render.
    let reference = test_service(&scenes);
    for id in ["lego", "palace"] {
        let mut direct = reference
            .session(id, small_options())
            .expect("session")
            .stream_with(StreamSpec::orbit(3), StreamConfig::default())
            .expect("stream");
        let mut remote = client
            .open(
                id,
                small_options(),
                StreamSpec::orbit(3),
                StreamConfig::default(),
            )
            .expect("open via proxy");
        let mut i = 0;
        while let Some(frame) = client.next_frame(&mut remote).expect("pull") {
            let expected = direct.next_frame().expect("direct has frame").expect("ok");
            assert_frames_identical(&frame, &expected, &format!("{id} frame {i}"));
            i += 1;
        }
        assert_eq!(i, 3, "{id}: short stream");
    }
    reference.shutdown();

    // Typed rejections forward verbatim.
    match client.open(
        "atlantis",
        RenderOptions::default(),
        StreamSpec::orbit(1),
        StreamConfig::default(),
    ) {
        Err(WireError::Rejected(WireRejection::UnknownScene(s))) => assert_eq!(s, "atlantis"),
        other => panic!("expected UnknownScene through the proxy, got {other:?}"),
    }

    // Merged stats reach both backends (total streams == what we opened;
    // rejected opens count too, wherever they landed).
    let stats = client.stats().expect("stats");
    assert_eq!(stats.streams.opened, 2, "merged stream count");

    // Kill the backend that *owns* "lego" (the ring says which); after a
    // probe round the proxy fails opens over to the survivor. Retry on
    // Unavailable: there is a window where the prober has not yet
    // noticed the corpse.
    let home = ShardRing::new(2)
        .route("lego", &[true, true])
        .expect("ring routes");
    backends[home]
        .take()
        .expect("home backend alive")
        .shutdown();
    let mut failover = None;
    for _ in 0..50 {
        match client.open(
            "lego",
            small_options(),
            StreamSpec::orbit(2),
            StreamConfig::default(),
        ) {
            Ok(r) => {
                failover = Some(r);
                break;
            }
            Err(WireError::Rejected(WireRejection::Unavailable { .. })) => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("unexpected failover error: {e}"),
        }
    }
    let mut remote = failover.expect("no open succeeded after backend death");
    let mut delivered = 0;
    while client
        .next_frame(&mut remote)
        .expect("failover pull")
        .is_some()
    {
        delivered += 1;
    }
    assert_eq!(delivered, 2, "failover stream short");

    proxy.shutdown();
    for server in backends.into_iter().flatten() {
        server.shutdown();
    }
}
