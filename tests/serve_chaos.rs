//! Chaos suite: the serving layer under a deterministic fault storm.
//!
//! A seeded [`FaultPlan`] injects load failures (transient and fatal),
//! load panics, slow loads and render panics into a live service while
//! streams and single-frame submits run at both priorities. The storm is
//! a pure function of the plan seed, so failures replay; which stream
//! absorbs a given panic still depends on thread scheduling, so the
//! assertions are scheduling-independent:
//!
//! * **Zero stranded handles** — every stream and handle resolves (Ok or
//!   a typed error); nothing blocks forever.
//! * **The pool recovers to full width** — every worker panic is caught
//!   and respawned (`respawns > 0`, `lost_workers == 0`).
//! * **Fault-free epilogue is bit-identical** — after `disarm`, served
//!   frames match direct renders exactly: the storm leaves no residue in
//!   the pixels.
//! * **Bulk sheds before Interactive** — admission control turns away
//!   best-effort traffic first.

use std::sync::Arc;
use std::time::Duration;

use gcc_render::{RenderOptions, Renderer, StandardRenderer};
use gcc_scene::io::RetryPolicy;
use gcc_scene::{Scene, SceneConfig, ScenePreset, ViewSpec};
use gcc_serve::{
    ChaosRenderer, FaultPlan, LoadFault, Priority, RenderRequest, RenderService, SceneSource,
    ServeConfig, ServeError, ShedPolicy, StreamConfig, StreamSpec,
};

fn scenes() -> Vec<(&'static str, Arc<Scene>)> {
    [("lego", ScenePreset::Lego), ("palace", ScenePreset::Palace)]
        .map(|(id, preset)| (id, Arc::new(preset.build(&SceneConfig::with_scale(0.02)))))
        .into_iter()
        .collect()
}

fn faulty_registry(
    scenes: &[(&'static str, Arc<Scene>)],
    plan: &Arc<FaultPlan>,
) -> Vec<(String, SceneSource)> {
    scenes
        .iter()
        .map(|(id, scene)| {
            (
                id.to_string(),
                SceneSource::faulty(
                    *id,
                    SceneSource::Memory(Arc::clone(scene)),
                    Arc::clone(plan),
                ),
            )
        })
        .collect()
}

/// Renderer table with every schedule's renderer wrapped in chaos
/// injection (panic draws happen on the worker, inside the batch).
fn chaos_renderers(plan: &Arc<FaultPlan>) -> gcc_serve::ScheduleRenderers {
    use gcc_render::Schedule;
    let mut table = gcc_serve::ScheduleRenderers::default();
    for schedule in Schedule::ALL {
        table = table.with(
            schedule,
            Box::new(ChaosRenderer::new(schedule.renderer(), Arc::clone(plan))),
        );
    }
    table
}

#[test]
fn fault_storm_resolves_every_stream_and_recovers_the_pool() {
    let scenes = scenes();
    // The seeded storm: ~15% transient / 5% fatal load failures, 5% load
    // panics, 5% slow loads, 3% render panics — plus one scripted load
    // panic so at least one respawn is guaranteed regardless of seed.
    let plan = Arc::new(
        FaultPlan::new(0xC4A0_5EED)
            .with_retryable_load_failures(150)
            .with_fatal_load_failures(50)
            .with_load_panics(50)
            .with_slow_loads(50, Duration::from_millis(2))
            .with_render_panics(30)
            .script_loads("lego", [Some(LoadFault::Panic)]),
    );
    let service = RenderService::with_renderers(
        ServeConfig {
            workers: 3,
            quarantine_for: Duration::from_millis(8),
            load_retry: RetryPolicy {
                max_attempts: 2,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
            },
            ..ServeConfig::default()
        },
        faulty_registry(&scenes, &plan),
        chaos_renderers(&plan),
    );

    // The storm: alternating bulk streams and interactive submits over
    // both scenes. Everything is consumed to the end — a stranded stream
    // or handle hangs the test, which is exactly the failure mode the
    // suite exists to catch. A failing stream collapses its remaining
    // slots into one terminal error item, so the invariant is per
    // request: every admitted stream/handle *resolves* (yields at least
    // one item and ends), every rejected one carries a typed error.
    let mut delivered = 0u64;
    let mut failed = 0u64;
    let mut turned_away = 0u64;
    let mut resolved = 0u64;
    for round in 0..12 {
        let id = scenes[round % scenes.len()].0;
        // Pace the rounds so quarantine windows can lapse mid-storm and
        // half-open probes actually run (a back-to-back loop would spend
        // the whole storm inside the first quarantine window).
        std::thread::sleep(Duration::from_millis(3));
        match service.session(id, RenderOptions::default()) {
            Ok(session) => match session.stream_with(
                StreamSpec::trajectory(4),
                StreamConfig::bulk().with_window(2),
            ) {
                Ok(stream) => {
                    let mut items = 0u64;
                    for item in stream {
                        items += 1;
                        match item {
                            Ok(_) => delivered += 1,
                            Err(
                                ServeError::Load { .. }
                                | ServeError::WorkerPanicked
                                | ServeError::ShuttingDown,
                            ) => failed += 1,
                            Err(other) => panic!("unexpected stream error: {other}"),
                        }
                    }
                    assert!(items >= 1, "an admitted stream always yields");
                    resolved += 1;
                }
                Err(ServeError::Quarantined { .. } | ServeError::Overloaded { .. }) => {
                    turned_away += 1
                }
                Err(other) => panic!("unexpected open error: {other}"),
            },
            Err(other) => panic!("sessions always open: {other}"),
        }
        match service.submit(RenderRequest::trajectory(id, (round as f32) / 12.0)) {
            Ok(handle) => {
                match handle.wait() {
                    Ok(_) => delivered += 1,
                    Err(
                        ServeError::Load { .. }
                        | ServeError::WorkerPanicked
                        | ServeError::ShuttingDown,
                    ) => failed += 1,
                    Err(other) => panic!("unexpected wait error: {other}"),
                }
                resolved += 1;
            }
            Err(ServeError::Quarantined { .. } | ServeError::Overloaded { .. }) => turned_away += 1,
            Err(other) => panic!("unexpected submit error: {other}"),
        }
    }
    // Every request resolved one way or another — nothing stranded.
    assert_eq!(resolved + turned_away, 24);
    assert!(delivered > 0, "the storm must not kill every request");
    assert!(failed > 0, "the scripted load panic fails its waiters");
    assert!(
        plan.injected_load_faults() > 0,
        "the storm must actually inject load faults"
    );

    let mid = service.stats();
    assert!(mid.respawns >= 1, "the scripted load panic guarantees one");
    assert_eq!(
        mid.lost_workers, 0,
        "every panicked worker must be respawned (pool at full width)"
    );
    assert!(mid.quarantines() > 0, "fatal loads must trip the breaker");

    // Fault-free epilogue: disarm, let quarantines lapse, then require
    // bit-identical parity with direct renders — the storm left no
    // residue in cache, scratch or scheduling state.
    plan.disarm();
    std::thread::sleep(Duration::from_millis(30));
    let direct = StandardRenderer::reference();
    let options = RenderOptions::default();
    for (id, scene) in &scenes {
        for t in [0.0f32, 0.4, 0.8] {
            let frame = service
                .submit(RenderRequest::trajectory(*id, t))
                .unwrap_or_else(|e| panic!("epilogue submit for '{id}' rejected: {e}"))
                .wait()
                .unwrap_or_else(|e| panic!("epilogue render for '{id}' failed: {e}"));
            let cam = scene
                .resolve_view(&ViewSpec::trajectory(t), &options)
                .expect("valid epilogue view");
            let want = direct.render_frame(&scene.gaussians, &cam);
            assert_eq!(
                frame.image, want.image,
                "epilogue frame for '{id}' at t={t} is not bit-identical"
            );
        }
    }
    let stats = service.shutdown();
    assert_eq!(stats.lost_workers, 0);
    assert_eq!(
        stats.quarantined_scenes, 0,
        "healthy epilogue loads must readmit every scene"
    );
}

#[test]
fn bulk_sheds_before_interactive_under_watermark_pressure() {
    let scenes = scenes();
    let registry: Vec<(String, SceneSource)> = scenes
        .iter()
        .map(|(id, s)| (id.to_string(), SceneSource::Memory(Arc::clone(s))))
        .collect();
    let service = RenderService::new(
        ServeConfig {
            workers: 1,
            shed: ShedPolicy {
                bulk_stream_watermark: 2,
                max_streams: 8,
                ..ShedPolicy::default()
            },
            ..ServeConfig::default()
        },
        registry,
    );
    let session = service.session("lego", RenderOptions::default()).unwrap();
    // Two unconsumed bulk streams reach the watermark…
    let held: Vec<_> = (0..2)
        .map(|_| {
            session
                .stream_with(
                    StreamSpec::trajectory(3),
                    StreamConfig::bulk().with_window(1),
                )
                .expect("below the watermark bulk admits")
        })
        .collect();
    // …so the next bulk stream is rejected…
    assert!(matches!(
        session.stream_with(StreamSpec::trajectory(3), StreamConfig::bulk()),
        Err(ServeError::Overloaded { .. })
    ));
    // …while interactive traffic still admits and completes.
    let frame = service
        .submit(RenderRequest::trajectory("palace", 0.5))
        .expect("interactive admits past the bulk watermark")
        .wait()
        .expect("interactive renders");
    assert!(frame.image.width() > 0);
    // The held streams still resolve completely — rejection never
    // cannibalizes admitted work.
    for stream in held {
        assert_eq!(stream.filter(Result::is_ok).count(), 3);
    }
    let stats = service.shutdown();
    assert_eq!(stats.priority(Priority::Bulk).rejected, 1);
    assert_eq!(stats.priority(Priority::Bulk).shed, 0);
    assert_eq!(stats.priority(Priority::Interactive).rejected, 0);
    assert_eq!(stats.priority(Priority::Interactive).shed, 0);
    assert_eq!(stats.turned_away(), 1);
    assert_eq!(stats.frames, 7, "2×3 bulk + 1 interactive");
}

#[test]
fn render_panic_storm_with_backpressure_still_drains_every_stream() {
    // Pure render-panic storm (no load faults): every 5th render call
    // panics, streams run with tight windows at both priorities. The
    // supervision + inbox fan-out must resolve every frame slot.
    let scenes = scenes();
    let plan = Arc::new(FaultPlan::new(77).with_render_panics(200));
    let registry: Vec<(String, SceneSource)> = scenes
        .iter()
        .map(|(id, s)| (id.to_string(), SceneSource::Memory(Arc::clone(s))))
        .collect();
    let service = RenderService::with_renderers(
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        registry,
        chaos_renderers(&plan),
    );
    // A panicked batch fails its whole stream through one terminal item,
    // so per-stream accounting is: some Ok frames, then at most one
    // WorkerPanicked, then the iterator ends. Run several rounds so the
    // service demonstrably keeps serving across respawns.
    let mut ok = 0u64;
    let mut stream_failures = 0u64;
    for round in 0..4 {
        for (id, _) in &scenes {
            let session = service.session(*id, RenderOptions::default()).unwrap();
            let stream = session
                .stream_with(StreamSpec::orbit(6), StreamConfig::default().with_window(2))
                .unwrap();
            let mut terminal = false;
            let mut items = 0u64;
            for item in stream {
                items += 1;
                assert!(!terminal, "nothing follows a terminal error");
                match item {
                    Ok(_) => ok += 1,
                    Err(ServeError::WorkerPanicked) => {
                        stream_failures += 1;
                        terminal = true;
                    }
                    Err(other) => panic!("unexpected error under render storm: {other}"),
                }
            }
            assert!(
                items >= 1,
                "stream (round {round}, '{id}') resolved nothing"
            );
        }
    }
    assert!(ok > 0, "the storm must not kill every frame");
    // Respawn accounting is asynchronous with respect to stream
    // resolution: the panicked batch fails its stream from a drop guard
    // *during* the unwind, while the supervisor counts the respawn only
    // after catching it — so briefly wait for the counter to converge on
    // the injected total before pinning it.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while service.stats().respawns < plan.injected_render_panics()
        && std::time::Instant::now() < deadline
    {
        std::thread::yield_now();
    }
    let stats = service.stats();
    assert!(
        stats.respawns >= 1,
        "a 20% panic rate over {} renders must trip at least once",
        ok
    );
    assert_eq!(stats.lost_workers, 0, "pool must recover to full width");
    assert_eq!(
        stats.respawns,
        plan.injected_render_panics(),
        "each injected panic costs exactly one respawn"
    );
    assert!(stream_failures >= 1, "some stream absorbed a panic");
    // Disarmed epilogue: the respawned pool serves a full stream clean.
    plan.disarm();
    let session = service
        .session(scenes[0].0, RenderOptions::default())
        .unwrap();
    let stream = session.stream(StreamSpec::orbit(5)).unwrap();
    assert_eq!(stream.filter(Result::is_ok).count(), 5);
    service.shutdown();
}
