//! End-to-end pins for the frame hot path overhaul: the global radix
//! depth ordering must reproduce stable `total_cmp` ordering on real
//! scene depth distributions, CSR tile bins must equal the historical
//! nested-`Vec` binning on seeded preset scenes, and scratch reuse must
//! leave renders bit-identical (fresh scratch ≡ warm scratch ≡ any
//! thread count).

use gcc_core::sort::depth_key;
use gcc_parallel::{radix_sort_indices, Parallelism};
use gcc_render::pipeline::stages::{self, footprint_rects_into, global_depth_order_into, TileBins};
use gcc_render::pipeline::{FrameScratch, GaussianWiseRenderer, Renderer, StandardRenderer};
use gcc_scene::{SceneConfig, ScenePreset, TrajectoryRunner};

fn scene(preset: ScenePreset, scale: f32) -> gcc_scene::Scene {
    preset.build(&SceneConfig::with_scale(scale))
}

#[test]
fn radix_depth_order_equals_total_cmp_order_on_preset_scenes() {
    for preset in [ScenePreset::Train, ScenePreset::Lego] {
        let scene = scene(preset, 0.05);
        let cam = scene.default_camera();
        let depths: Vec<f32> = scene
            .gaussians
            .iter()
            .map(|g| cam.view_depth(g.mean))
            .collect();
        let keys: Vec<u32> = depths.iter().map(|&d| depth_key(d)).collect();
        let mut expect: Vec<u32> = (0..depths.len() as u32).collect();
        expect.sort_by(|&a, &b| depths[a as usize].total_cmp(&depths[b as usize]));
        for threads in [1, 4] {
            assert_eq!(
                radix_sort_indices(&keys, threads),
                expect,
                "{preset} threads={threads}"
            );
        }
    }
}

#[test]
fn csr_bins_equal_nested_vec_bins_on_preset_scene() {
    let scene = scene(ScenePreset::Truck, 0.04);
    let cam = scene.default_camera();
    let projected = stages::project_and_shade_all(
        &scene.gaussians,
        &cam,
        gcc_core::bounds::BoundingLaw::ThreeSigma,
        1,
    );
    let (w, h, ts) = (cam.width, cam.height, 16u32);
    let tiles_x = w.div_ceil(ts);
    let n_tiles = (tiles_x * h.div_ceil(ts)) as usize;

    // Historical formulation: nested Vecs filled in scene order, then a
    // stable per-tile comparison sort.
    let mut nested: Vec<Vec<u32>> = vec![Vec::new(); n_tiles];
    for (idx, p) in projected.iter().enumerate() {
        let rect = gcc_core::bounds::PixelRect::from_circle(p.mean2d, p.radius, w, h);
        if rect.is_empty() {
            continue;
        }
        let (tx0, ty0, tx1, ty1) = rect.tile_range(ts);
        for ty in ty0..ty1 {
            for tx in tx0..tx1 {
                nested[(ty * tiles_x + tx) as usize].push(idx as u32);
            }
        }
    }
    for bin in &mut nested {
        stages::sort_indices_by_depth(bin, &projected);
    }

    let mut rects = Vec::new();
    footprint_rects_into(&projected, w, h, 1, &mut rects);
    let (mut keys, mut order, mut radix) = (Vec::new(), Vec::new(), Vec::new());
    global_depth_order_into(&projected, 1, &mut keys, &mut order, &mut radix);
    let mut bins = TileBins::new();
    let kv = bins.build(&rects, &order, ts, tiles_x, n_tiles);

    assert_eq!(kv, nested.iter().map(|b| b.len() as u64).sum::<u64>());
    for (t, reference) in nested.iter().enumerate() {
        assert_eq!(bins.bin(t), reference.as_slice(), "tile {t}");
    }
}

#[test]
fn scratch_reuse_is_bit_identical_to_fresh_scratch() {
    let scene = scene(ScenePreset::Lego, 0.05);
    let renderers: Vec<Box<dyn Renderer>> = vec![
        Box::new(StandardRenderer::reference()),
        Box::new(StandardRenderer::gscore()),
        Box::new(GaussianWiseRenderer::default()),
    ];
    for r in &renderers {
        // Warm one scratch across several different cameras, comparing
        // each frame against a fresh-scratch render.
        let mut warm = FrameScratch::new();
        for i in 0..4 {
            let cam = scene.camera(i as f32 / 4.0);
            let reused = r.render_frame_reusing(&scene.gaussians, &cam, &mut warm);
            let fresh = r.render_frame(&scene.gaussians, &cam);
            assert_eq!(reused.image, fresh.image, "{} frame {i}", r.name());
            assert_eq!(reused.stats, fresh.stats, "{} frame {i}", r.name());
        }
    }
}

#[test]
fn trajectory_runner_scratch_threading_stays_deterministic() {
    let scene = scene(ScenePreset::Train, 0.04);
    let renderer = StandardRenderer::reference();
    let seq = TrajectoryRunner::new(6)
        .with_parallelism(Parallelism::Sequential)
        .run(&scene, &renderer);
    for threads in [2, 5] {
        let par = TrajectoryRunner::new(6)
            .with_parallelism(Parallelism::fixed(threads))
            .run(&scene, &renderer);
        for (a, b) in seq.frames.iter().zip(&par.frames) {
            assert_eq!(a.image, b.image, "threads={threads}");
            assert_eq!(a.stats, b.stats, "threads={threads}");
        }
    }
}
