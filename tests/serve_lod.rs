//! Scheduling behavior of the deadline-aware quality ladder
//! (`ServeConfig::lod`): cold scenes start at the floor rung and climb
//! back under generous deadlines, hopeless deadlines pin the floor,
//! deadline-free frames bypass the ladder entirely (and stay
//! bit-identical to ladder-off serving), and load-time hierarchy builds
//! are charged to the cache budget.
//!
//! The end-to-end miss-avoidance demonstration (ladder-on zero misses vs
//! ladder-off misses under the same deadline) lives in
//! `bench_serve --lod`, whose committed record `perf_gate` enforces.

use std::sync::Arc;
use std::time::Duration;

use gcc_scene::{Scene, SceneConfig, ScenePreset};
use gcc_serve::{
    LodPolicy, RenderRequest, RenderService, SceneSource, ServeConfig, StreamConfig, StreamSpec,
};

fn lego(scale: f32) -> Arc<Scene> {
    Arc::new(ScenePreset::Lego.build(&SceneConfig::with_scale(scale)))
}

fn service(scene: &Arc<Scene>, lod: Option<LodPolicy>) -> RenderService {
    RenderService::new(
        ServeConfig {
            workers: 1,
            lod,
            ..ServeConfig::default()
        },
        [("lego".to_string(), SceneSource::Memory(Arc::clone(scene)))],
    )
}

/// Streams `frames` deadline-carrying frames sequentially (window 1, so
/// each dispatch sees the cost observations of its predecessors).
fn run_deadline_sweep(svc: &RenderService, scene: &Scene, frames: usize, deadline: Duration) {
    let session = svc.session("lego", Default::default()).unwrap();
    let stream = session
        .stream_with(
            StreamSpec::TrajectorySweep {
                t0: 0.0,
                t1: 0.8,
                frames,
            },
            StreamConfig::default()
                .with_window(1)
                .with_deadline(deadline),
        )
        .unwrap();
    for (i, frame) in stream.enumerate() {
        let frame = frame.unwrap_or_else(|e| panic!("frame {i} failed: {e}"));
        // Degraded or not, the client always receives the geometry it
        // asked for (reduced renders are upscaled back).
        assert_eq!(
            (frame.image.width(), frame.image.height()),
            scene.resolution,
            "frame {i} came back the wrong size"
        );
    }
}

#[test]
fn ladder_off_is_the_default_and_reports_disabled() {
    let scene = lego(0.02);
    let svc = service(&scene, None);
    run_deadline_sweep(&svc, &scene, 3, Duration::from_secs(60));
    let stats = svc.shutdown();
    assert!(!stats.lod.enabled);
    assert_eq!(stats.lod.ladder_frames(), 0);
    assert_eq!(stats.lod.degraded_frames, 0);
    assert!(stats.lod.recent.is_empty());
}

#[test]
fn cold_scenes_floor_then_climb_back_under_generous_deadlines() {
    let scene = lego(0.02);
    let svc = service(&scene, Some(LodPolicy::default()));
    let floor = LodPolicy::default().ladder.floor();
    run_deadline_sweep(&svc, &scene, 6, Duration::from_secs(60));
    let stats = svc.shutdown();
    assert!(stats.lod.enabled);
    assert_eq!(stats.lod.ladder_frames(), 6);
    // The very first dispatch has no cost data: it must take the
    // miss-proof floor rung, and that one observation prices the whole
    // ladder, so the generous deadline climbs straight back to full.
    let first = stats.lod.recent.first().expect("decisions were traced");
    assert_eq!(first.rung as usize, floor);
    assert!(stats.lod.frames_by_rung[floor] >= 1);
    assert!(
        stats.lod.frames_by_rung[0] >= 1,
        "never recovered to full quality: {:?}",
        stats.lod.frames_by_rung
    );
    assert!(stats.lod.recoveries >= 1);
    // 60-second deadlines are never missed.
    for p in stats.per_priority.values() {
        assert_eq!(p.deadline_misses, 0);
    }
}

#[test]
fn hopeless_deadlines_pin_the_floor_rung() {
    let scene = lego(0.02);
    let svc = service(&scene, Some(LodPolicy::default()));
    let floor = LodPolicy::default().ladder.floor();
    run_deadline_sweep(&svc, &scene, 4, Duration::from_nanos(1));
    let stats = svc.shutdown();
    // Zero remaining budget fits nothing: every frame renders at the
    // floor (and is still delivered, full-size — the ladder degrades
    // frames, it never drops them).
    assert_eq!(stats.lod.frames_by_rung[floor], 4);
    assert_eq!(stats.lod.degraded_frames, 4);
    assert_eq!(stats.lod.frames_by_rung[0], 0);
    for d in &stats.lod.recent {
        assert!(d.missed, "a 1ns deadline cannot be met");
    }
}

#[test]
fn deadline_free_frames_bypass_the_ladder_and_stay_bit_identical() {
    let scene = lego(0.02);
    let ladder_on = service(&scene, Some(LodPolicy::default()));
    let ladder_off = service(&scene, None);
    for t in [0.1f32, 0.55] {
        let a = ladder_on
            .render_blocking(RenderRequest::trajectory("lego", t))
            .unwrap();
        let b = ladder_off
            .render_blocking(RenderRequest::trajectory("lego", t))
            .unwrap();
        assert_eq!(a.image, b.image, "ladder-on diverged at t {t}");
    }
    let stats = ladder_on.shutdown();
    assert!(stats.lod.enabled);
    // Completed frames, none dispatched through the ladder.
    assert_eq!(stats.frames, 2);
    assert_eq!(stats.lod.ladder_frames(), 0);
    assert_eq!(stats.lod.degraded_frames, 0);
}

#[test]
fn hierarchies_are_built_on_load_and_charged_to_the_cache() {
    let scene = lego(0.03);
    assert!(scene.lod.is_none());
    let plain_bytes = scene.approx_bytes();

    let svc = service(&scene, Some(LodPolicy::default()));
    svc.render_blocking(RenderRequest::trajectory("lego", 0.2))
        .unwrap();
    let with_lod = svc.stats().resident_bytes;
    svc.shutdown();

    let svc = service(&scene, None);
    svc.render_blocking(RenderRequest::trajectory("lego", 0.2))
        .unwrap();
    let without = svc.stats().resident_bytes;
    svc.shutdown();

    assert_eq!(without, plain_bytes);
    assert!(
        with_lod > plain_bytes,
        "load-time hierarchy not charged: {with_lod} vs {plain_bytes}"
    );
    // The source's own scene is untouched (the build copies on write).
    assert!(scene.lod.is_none());
}
