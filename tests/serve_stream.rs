//! Stream lifecycle behavior of the session API: backpressure bounds,
//! cancellation releasing queued work, shutdown resolving in-flight
//! streams with `ShuttingDown`, bounded-wait polling, deadline
//! accounting, and the per-priority statistics split.
//!
//! Pixel-level parity of streamed frames lives in `tests/serve_parity.rs`;
//! this suite pins the *scheduling* contracts.

use std::sync::Arc;
use std::time::Duration;

use gcc_core::{Camera, Gaussian3D};
use gcc_render::pipeline::Frame;
use gcc_render::{RenderOptions, Renderer, Schedule, StandardRenderer};
use gcc_scene::{Scene, SceneConfig, ScenePreset, ViewSpec};
use gcc_serve::{
    Priority, RenderRequest, RenderService, SceneSource, ServeConfig, ServeError, StreamConfig,
    StreamPoll, StreamSpec,
};

fn registry(scale: f32) -> (Vec<Arc<Scene>>, Vec<(String, SceneSource)>) {
    let mut scenes = Vec::new();
    let mut reg = Vec::new();
    for (id, preset) in [("lego", ScenePreset::Lego), ("palace", ScenePreset::Palace)] {
        let scene = Arc::new(preset.build(&SceneConfig::with_scale(scale)));
        scenes.push(Arc::clone(&scene));
        reg.push((id.to_string(), SceneSource::Memory(scene)));
    }
    (scenes, reg)
}

/// A renderer that sleeps before delegating, to hold frames in flight
/// long enough for cancellation / timeout tests to observe them.
struct SlowRenderer {
    inner: StandardRenderer,
    delay: Duration,
}

impl SlowRenderer {
    fn boxed(delay_ms: u64) -> Box<dyn Renderer + Send + Sync> {
        Box::new(Self {
            inner: StandardRenderer::reference(),
            delay: Duration::from_millis(delay_ms),
        })
    }
}

impl Renderer for SlowRenderer {
    fn name(&self) -> &str {
        "slow-reference"
    }
    fn render_frame(&self, gaussians: &[Gaussian3D], camera: &Camera) -> Frame {
        std::thread::sleep(self.delay);
        self.inner.render_frame(gaussians, camera)
    }
}

fn slow_service(reg: Vec<(String, SceneSource)>, workers: usize, delay_ms: u64) -> RenderService {
    RenderService::with_renderers(
        ServeConfig {
            workers,
            ..ServeConfig::default()
        },
        reg,
        gcc_serve::ScheduleRenderers::default()
            .with(Schedule::Reference, SlowRenderer::boxed(delay_ms)),
    )
}

#[test]
fn streams_deliver_in_order_under_the_backpressure_window() {
    let (scenes, reg) = registry(0.02);
    let service = RenderService::new(
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
        reg,
    );
    let session = service.session("lego", RenderOptions::default()).unwrap();
    let spec = StreamSpec::TrajectorySweep {
        t0: 0.0,
        t1: 1.0,
        frames: 8,
    };
    let window = 2;
    let views = spec.views();
    let stream = session
        .stream_with(spec, StreamConfig::bulk().with_window(window))
        .unwrap();
    assert_eq!(stream.len(), 8);
    let direct = StandardRenderer::reference();
    let mut delivered = 0;
    for (frame, view) in stream.zip(&views) {
        let frame = frame.expect("stream frame");
        let cam = scenes[0]
            .resolve_view(view, &RenderOptions::default())
            .unwrap();
        let want = direct.render_frame(&scenes[0].gaussians, &cam);
        assert_eq!(frame.image, want.image, "stream order broke at {view:?}");
        delivered += 1;
    }
    assert_eq!(delivered, 8);
    let stats = service.shutdown();
    assert_eq!(stats.frames, 8);
    assert_eq!(stats.streams.opened, 1);
    assert_eq!(stats.streams.completed, 1);
    assert_eq!(stats.streams.cancelled, 0);
    // The single stream was the only client: the scheduler never held
    // more than `window` undelivered frames, so the queue high-water
    // mark is bounded by the window.
    assert!(
        stats.max_queue_depth <= window,
        "queue depth {} exceeded the window {window}",
        stats.max_queue_depth
    );
    assert_eq!(stats.priority(Priority::Bulk).frames, 8);
    assert_eq!(stats.priority(Priority::Bulk).requests, 8);
}

#[test]
fn cancellation_releases_queued_work() {
    let (_, reg) = registry(0.02);
    let service = slow_service(reg, 1, 25);
    let session = service.session("lego", RenderOptions::default()).unwrap();
    let mut stream = session
        .stream_with(
            StreamSpec::trajectory(6),
            StreamConfig::bulk().with_window(4),
        )
        .unwrap();
    // Consume one frame (so the stream is demonstrably live), then bail.
    let first = stream.next_frame().expect("first frame");
    first.expect("first frame renders");
    stream.cancel();
    // Cancellation is idempotent and the stream reports itself done.
    stream.cancel();
    assert!(stream.next_frame().is_none());
    assert!(matches!(stream.try_next(), StreamPoll::Done));
    // The service is still healthy: later requests are served.
    service
        .render_blocking(RenderRequest::trajectory("palace", 0.5))
        .unwrap();
    let stats = service.shutdown();
    assert_eq!(stats.streams.cancelled, 1);
    assert!(
        stats.streams.frames_discarded >= 1,
        "cancel must free queued frames (discarded {})",
        stats.streams.frames_discarded
    );
    assert!(
        stats.frames < 7,
        "cancelled work must not all render ({} frames)",
        stats.frames
    );
    assert_eq!(stats.queue_depth, 0, "cancelled frames left the queue");
}

#[test]
fn dropping_a_stream_cancels_it() {
    let (_, reg) = registry(0.02);
    let service = slow_service(reg, 1, 25);
    let session = service.session("lego", RenderOptions::default()).unwrap();
    {
        let _abandoned = session
            .stream_with(
                StreamSpec::trajectory(6),
                StreamConfig::bulk().with_window(4),
            )
            .unwrap();
        // Dropped without consuming a single frame.
    }
    let stats = service.shutdown();
    assert_eq!(stats.streams.opened, 1);
    assert_eq!(stats.streams.cancelled, 1);
    assert_eq!(stats.streams.completed, 0);
    assert_eq!(stats.queue_depth, 0, "abandoned stream released its slots");
}

#[test]
fn shutdown_resolves_in_flight_streams_with_shutting_down() {
    let (_, reg) = registry(0.02);
    let service = RenderService::new(
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
        reg,
    );
    let session = service.session("lego", RenderOptions::default()).unwrap();
    let mut stream = session
        .stream_with(
            StreamSpec::trajectory(10),
            StreamConfig::bulk().with_window(2),
        )
        .unwrap();
    // Consume one frame, then shut the service down with the stream
    // mid-flight (8+ frames never issued).
    stream.next_frame().expect("first frame").expect("renders");
    let stats = service.shutdown();
    assert!(
        stats.frames < 10,
        "shutdown must not render the whole stream"
    );
    // The issued frames drained; the unissued remainder resolves with
    // ShuttingDown exactly once, then the stream ends.
    let mut oks = 0;
    let mut shutdowns = 0;
    for item in stream.by_ref() {
        match item {
            Ok(_) => oks += 1,
            Err(ServeError::ShuttingDown) => shutdowns += 1,
            Err(other) => panic!("unexpected stream error: {other}"),
        }
    }
    assert_eq!(shutdowns, 1, "exactly one terminal ShuttingDown");
    assert!(oks <= 2, "at most the windowed frames were still rendered");
    assert!(stream.next_frame().is_none(), "stream stays done");
}

#[test]
fn wait_timeout_polls_without_losing_the_frame() {
    let (_, reg) = registry(0.02);
    let service = slow_service(reg, 1, 60);
    let mut handle = service
        .submit(RenderRequest::trajectory("lego", 0.3))
        .unwrap();
    assert!(!handle.is_ready(), "frame cannot be done instantly");
    // Poll with a timeout far below the render time: the handle comes
    // back so the frame is not lost.
    let mut timeouts = 0;
    let frame = loop {
        match handle.wait_timeout(Duration::from_millis(5)) {
            Ok(result) => break result.expect("request served"),
            Err(back) => {
                timeouts += 1;
                assert!(timeouts < 1000, "frame never arrived");
                handle = back;
            }
        }
    };
    assert!(frame.image.width() > 0);
    assert!(timeouts >= 1, "a 5ms poll must time out at least once");
    service.shutdown();
}

#[test]
fn zero_deadline_counts_every_frame_as_missed() {
    let (_, reg) = registry(0.02);
    let service = RenderService::new(
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
        reg,
    );
    let session = service.session("lego", RenderOptions::default()).unwrap();
    let stream = session
        .stream_with(
            StreamSpec::trajectory(4),
            StreamConfig::bulk().with_deadline(Duration::ZERO),
        )
        .unwrap();
    assert_eq!(stream.filter(Result::is_ok).count(), 4);
    let stats = service.shutdown();
    let bulk = stats.priority(Priority::Bulk);
    assert_eq!(bulk.with_deadline, 4);
    assert_eq!(bulk.deadline_misses, 4, "a zero deadline is always missed");
    assert_eq!(stats.deadline_misses(), 4);
    // Interactive saw no deadline-bearing traffic.
    assert_eq!(stats.priority(Priority::Interactive).with_deadline, 0);
}

#[test]
fn priorities_split_the_statistics() {
    let (_, reg) = registry(0.02);
    let service = RenderService::new(
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        reg,
    );
    let session = service.session("lego", RenderOptions::default()).unwrap();
    let bulk = session
        .stream_with(StreamSpec::trajectory(5), StreamConfig::bulk())
        .unwrap();
    // Interleave interactive single frames with the bulk consumption.
    for t in [0.1f32, 0.6, 0.9] {
        session.render_blocking(ViewSpec::trajectory(t)).unwrap();
    }
    assert_eq!(bulk.filter(Result::is_ok).count(), 5);
    let stats = service.shutdown();
    assert_eq!(stats.priority(Priority::Bulk).frames, 5);
    assert_eq!(stats.priority(Priority::Interactive).frames, 3);
    assert_eq!(stats.priority(Priority::Bulk).requests, 5);
    assert_eq!(stats.priority(Priority::Interactive).requests, 3);
    assert_eq!(stats.frames, 8);
    // Streams: one bulk + three single-frame shims.
    assert_eq!(stats.streams.opened, 4);
    assert_eq!(stats.streams.completed, 4);
}

#[test]
fn empty_and_invalid_stream_specs_are_rejected_at_open() {
    let (_, reg) = registry(0.02);
    let service = RenderService::new(
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
        reg,
    );
    let session = service.session("lego", RenderOptions::default()).unwrap();
    assert_eq!(
        session
            .stream(StreamSpec::ViewList(Vec::new()))
            .unwrap_err(),
        ServeError::EmptyStream
    );
    assert_eq!(
        session.stream(StreamSpec::trajectory(0)).unwrap_err(),
        ServeError::EmptyStream
    );
    // A NaN sweep endpoint propagates into every generated view and is
    // caught by validation before any frame is issued.
    assert!(matches!(
        session.stream(StreamSpec::TrajectorySweep {
            t0: f32::NAN,
            t1: 1.0,
            frames: 3,
        }),
        Err(ServeError::InvalidRequest(_))
    ));
    // Out-of-range sweeps too.
    assert!(matches!(
        session.stream(StreamSpec::TrajectorySweep {
            t0: 0.0,
            t1: 1.5,
            frames: 3,
        }),
        Err(ServeError::InvalidRequest(_))
    ));
    // Session defaults are validated when the session opens.
    assert!(matches!(
        service.session(
            "lego",
            RenderOptions::default().with_roi(gcc_render::Roi::new(0, 0, 0, 4)),
        ),
        Err(ServeError::InvalidRequest(_))
    ));
    let stats = service.shutdown();
    assert_eq!(stats.streams.opened, 0);
    assert_eq!(stats.frames, 0);
}
