//! Streaming through the session API: one bulk orbit stream playing
//! back under backpressure while interactive posed frames preempt it,
//! plus a cancelled stream releasing its queued work.
//!
//! This is the serving shape of the paper's headset scenario — a client
//! consumes a continuous orbit as a stream (bounded in-flight window, in
//! -order delivery) while latency-critical one-off requests cut ahead via
//! the `Interactive` priority class.
//!
//! Run with: `cargo run --release --example stream_orbit`

use std::time::Duration;

use gcc_repro::math::Vec3;
use gcc_repro::render::{RenderOptions, Schedule};
use gcc_repro::scene::{ScenePreset, ViewSpec};
use gcc_repro::serve::{
    Priority, RenderService, SceneSource, ServeConfig, StreamConfig, StreamSpec,
};

fn main() {
    let service = RenderService::new(
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        [(
            "palace".to_string(),
            SceneSource::Preset {
                preset: ScenePreset::Palace,
                scale: 0.1,
            },
        )],
    );

    // A bulk playback client: one full orbit, GCC hardware schedule, at
    // most 3 undelivered frames in flight, 150 ms per-frame deadline.
    let session = service
        .session(
            "palace",
            RenderOptions::default()
                .with_schedule(Schedule::GccHardware)
                .at_resolution(320, 180),
        )
        .expect("palace is registered");
    let stream = session
        .stream_with(
            StreamSpec::orbit(8),
            StreamConfig::bulk()
                .with_window(3)
                .with_deadline(Duration::from_millis(150)),
        )
        .expect("orbit stream opens");
    println!(
        "streaming {} orbit frames (window 3, bulk priority) …",
        stream.len()
    );
    for (i, item) in stream.enumerate() {
        let frame = item.expect("orbit frame");
        println!(
            "  orbit frame {i}: {}x{} px, {} Gaussians rendered",
            frame.image.width(),
            frame.image.height(),
            frame.stats.rendered
        );
        // Interactive work cuts ahead of the remaining bulk frames.
        if i == 2 {
            let posed = session
                .submit(ViewSpec::look_at(Vec3::new(4.0, 1.5, -6.0), Vec3::ZERO))
                .expect("posed submit");
            let frame = posed.wait().expect("posed frame");
            println!(
                "  >> interactive pose preempted the orbit: {}x{} px",
                frame.image.width(),
                frame.image.height()
            );
        }
    }

    // A second stream, abandoned halfway: cancel frees its queued work.
    let mut cancelled = session
        .stream_with(StreamSpec::orbit(12), StreamConfig::bulk().with_window(4))
        .expect("second stream opens");
    for _ in 0..3 {
        cancelled
            .next_frame()
            .expect("frame present")
            .expect("frame renders");
    }
    cancelled.cancel();
    println!("cancelled the second orbit after 3 of 12 frames");

    let stats = service.shutdown();
    let interactive = stats.priority(Priority::Interactive);
    let bulk = stats.priority(Priority::Bulk);
    println!(
        "\nstreams: {} opened, {} completed, {} cancelled, {} queued frames discarded",
        stats.streams.opened,
        stats.streams.completed,
        stats.streams.cancelled,
        stats.streams.frames_discarded
    );
    println!(
        "interactive: {} frames, p95 {:.2} ms | bulk: {} frames, p95 {:.2} ms, {} deadline misses",
        interactive.frames,
        interactive.latency_p95_ms,
        bulk.frames,
        bulk.latency_p95_ms,
        bulk.deadline_misses
    );
    assert!(stats.streams.cancelled >= 1);
    assert!(
        stats.frames < 8 + 1 + 12,
        "cancelled frames must not all render"
    );
}
