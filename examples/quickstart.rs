//! Quickstart: build a scene, render it through the stage-based pipeline
//! with both schedules, save a PPM, and print the workload statistics
//! that motivate the paper.
//!
//! Run with: `cargo run --release --example quickstart`

use gcc_render::{GaussianWiseRenderer, Renderer, StandardRenderer};
use gcc_scene::{SceneConfig, ScenePreset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A Lego-like scene at 25% of the repro scale keeps this instant.
    let scene = ScenePreset::Lego.build(&SceneConfig::with_scale(0.25));
    let cam = scene.default_camera();
    println!(
        "scene '{}': {} Gaussians, {}x{} @ {:.0} deg fov",
        scene.name,
        scene.len(),
        cam.width,
        cam.height,
        scene.fov_y_deg
    );

    // Both schedules implement the same `Renderer` interface and report
    // the same unified `FrameStats`.
    let reference = StandardRenderer::reference().render_frame(&scene.gaussians, &cam);
    println!(
        "standard dataflow: projected {} of {} Gaussians, {} rendered ({:.0}% unused)",
        reference.stats.projected,
        reference.stats.total_gaussians,
        reference.stats.rendered,
        100.0 * reference.stats.unused_fraction()
    );

    // GCC dataflow render (hardware configuration: LUT-EXP, omega-sigma law).
    let gcc = GaussianWiseRenderer::gcc_hardware().render_frame(&scene.gaussians, &cam);
    println!(
        "GCC dataflow: {} geometry loads, {} SH loads, {} groups skipped",
        gcc.stats.geometry_loads, gcc.stats.sh_loads, gcc.stats.groups_skipped
    );

    let mse = gcc.image.mse(&reference.image);
    println!("image agreement (MSE vs reference): {mse:.2e}");

    let out = std::env::temp_dir().join("gcc_quickstart.ppm");
    gcc.image.save_ppm(&out)?;
    println!("wrote {}", out.display());
    Ok(())
}
