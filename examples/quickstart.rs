//! Quickstart: build a scene, render it with the GCC dataflow, save a PPM,
//! and print the workload statistics that motivate the paper.
//!
//! Run with: `cargo run --release --example quickstart`

use gcc_render::gaussian_wise::{render_gaussian_wise, GaussianWiseConfig};
use gcc_render::standard::render_reference;
use gcc_scene::{SceneConfig, ScenePreset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A Lego-like scene at 25% of the repro scale keeps this instant.
    let scene = ScenePreset::Lego.build(&SceneConfig::with_scale(0.25));
    let cam = scene.default_camera();
    println!(
        "scene '{}': {} Gaussians, {}x{} @ {:.0} deg fov",
        scene.name,
        scene.len(),
        cam.width,
        cam.height,
        scene.fov_y_deg
    );

    // Reference (GPU-style) render.
    let reference = render_reference(&scene.gaussians, &cam);
    println!(
        "standard dataflow: preprocessed {} of {} Gaussians, {} rendered ({:.0}% unused)",
        reference.stats.preprocessed,
        reference.stats.total_gaussians,
        reference.stats.rendered,
        100.0 * reference.stats.unused_fraction()
    );

    // GCC dataflow render (hardware configuration: LUT-EXP, omega-sigma law).
    let gcc = render_gaussian_wise(&scene.gaussians, &cam, &GaussianWiseConfig::gcc_hardware());
    println!(
        "GCC dataflow: {} geometry loads, {} SH loads, {} groups skipped",
        gcc.stats.geometry_loads, gcc.stats.sh_loads, gcc.stats.groups_skipped
    );

    let mse = gcc.image.mse(&reference.image);
    println!("image agreement (MSE vs reference): {mse:.2e}");

    let out = std::env::temp_dir().join("gcc_quickstart.ppm");
    gcc.image.save_ppm(&out)?;
    println!("wrote {}", out.display());
    Ok(())
}
