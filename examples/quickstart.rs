//! Quickstart: build a scene, describe *what to render* with the
//! request-model API — a `ViewSpec` plus `RenderOptions` — and render it
//! through both dataflows via `Renderer::render_job`.
//!
//! Run with: `cargo run --release --example quickstart`

use gcc_render::pipeline::FrameScratch;
use gcc_render::{RenderJob, RenderOptions, Roi, Schedule};
use gcc_scene::{SceneConfig, ScenePreset, ViewSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A Lego-like scene at 25% of the repro scale keeps this instant.
    let scene = ScenePreset::Lego.build(&SceneConfig::with_scale(0.25));
    println!(
        "scene '{}': {} Gaussians, native {}x{} @ {:.0} deg fov",
        scene.name,
        scene.len(),
        scene.resolution.0,
        scene.resolution.1,
        scene.fov_y_deg
    );

    // A view request: trajectory parameter 0.0 on the scene's rig. The
    // same `ViewSpec` could be an explicit pose (`ViewSpec::look_at`) or
    // an orbit angle — the scene resolves any of them into a camera.
    let view = ViewSpec::trajectory(0.0);
    let options = RenderOptions::default();
    let cam = scene.resolve_view(&view, &options)?;

    // Every schedule consumes the same `RenderJob`; `Schedule` names the
    // five stock configurations of the two dataflows.
    let reference = Schedule::Reference.renderer().render_job(
        &RenderJob::with_options(&scene.gaussians, &cam, options.clone()),
        &mut FrameScratch::new(),
    );
    println!(
        "standard dataflow: projected {} of {} Gaussians, {} rendered ({:.0}% unused)",
        reference.stats.projected,
        reference.stats.total_gaussians,
        reference.stats.rendered,
        100.0 * reference.stats.unused_fraction()
    );

    // GCC dataflow (hardware configuration: LUT-EXP, omega-sigma law).
    let gcc = Schedule::GccHardware.renderer().render_job(
        &RenderJob::with_options(&scene.gaussians, &cam, options),
        &mut FrameScratch::new(),
    );
    println!(
        "GCC dataflow: {} geometry loads, {} SH loads, {} groups skipped",
        gcc.stats.geometry_loads, gcc.stats.sh_loads, gcc.stats.groups_skipped
    );

    let mse = gcc.image.mse(&reference.image);
    println!("image agreement (MSE vs reference): {mse:.2e}");

    // Per-request output shaping: the center quarter of the frame as a
    // region of interest — bit-identical to cropping the full render.
    let (w, h) = scene.resolution;
    let roi_opts = RenderOptions::default().with_roi(Roi::new(w / 4, h / 4, w / 2, h / 2));
    let roi_cam = scene.resolve_view(&view, &roi_opts)?;
    let roi = Schedule::Reference.renderer().render_job(
        &RenderJob::with_options(&scene.gaussians, &roi_cam, roi_opts),
        &mut FrameScratch::new(),
    );
    println!(
        "ROI render: {}x{} pixels, {} tile loads (vs {} full-frame)",
        roi.image.width(),
        roi.image.height(),
        roi.stats.tile_loads,
        reference.stats.tile_loads
    );

    let out = std::env::temp_dir().join("gcc_quickstart.ppm");
    gcc.image.save_ppm(&out)?;
    println!("wrote {}", out.display());
    Ok(())
}
