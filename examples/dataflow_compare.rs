//! Side-by-side comparison of the three dataflows on one scene: the GPU
//! reference, the GSCore-style tile pipeline, and the GCC Gaussian-wise
//! pipeline — verifying they draw the same picture while doing wildly
//! different amounts of work.
//!
//! Run with: `cargo run --release --example dataflow_compare`

use gcc_render::quality::psnr;
use gcc_render::{GaussianWiseRenderer, Renderer, StandardRenderer};
use gcc_scene::{SceneConfig, ScenePreset};

fn main() {
    let scene = ScenePreset::Train.build(&SceneConfig::with_scale(0.5));
    let cam = scene.default_camera();
    println!("scene '{}': {} Gaussians\n", scene.name, scene.len());

    // All three dataflows behind the same `Renderer` interface.
    let gpu = StandardRenderer::reference().render_frame(&scene.gaussians, &cam);
    let gscore = StandardRenderer::gscore().render_frame(&scene.gaussians, &cam);
    let gcc = GaussianWiseRenderer::gcc_hardware().render_frame(&scene.gaussians, &cam);

    println!("image agreement:");
    println!(
        "  GSCore vs GPU: {:.1} dB PSNR",
        psnr(&gscore.image, &gpu.image)
    );
    println!(
        "  GCC    vs GPU: {:.1} dB PSNR",
        psnr(&gcc.image, &gpu.image)
    );

    println!("\nwork done (standard tile-wise pipeline):");
    let s = &gscore.stats;
    println!("  projected Gaussians    : {}", s.projected);
    println!("  KV pairs               : {}", s.kv_pairs);
    println!(
        "  tile loads             : {} ({:.2}x per Gaussian)",
        s.tile_loads,
        s.avg_loads_per_gaussian()
    );
    println!("  alpha evaluations      : {}", s.pixels_tested);

    println!("\nwork done (GCC Gaussian-wise pipeline):");
    let g = &gcc.stats;
    println!("  geometry loads         : {}", g.geometry_loads);
    println!("  SH loads (conditional) : {}", g.sh_loads);
    println!(
        "  groups skipped         : {} of {}",
        g.groups_skipped, g.groups_total
    );
    println!("  blocks dispatched      : {}", g.blocks_dispatched);
    println!("  live alpha evaluations : {}", g.alpha_lane_evals);

    println!(
        "\nSH-load reduction vs standard preprocessing: {:.1}x",
        s.projected as f64 / g.sh_loads.max(1) as f64
    );
}
