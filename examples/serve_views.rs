//! Heterogeneous serving: one `RenderService`, many kinds of clients —
//! trajectory browsers, posed headsets, thumbnail generators asking for
//! small resolutions, magnifiers asking for regions of interest, and
//! clients picking different schedules per request. The service batches by
//! `(scene, schedule, resolution)` and reports a per-schedule breakdown.
//!
//! Run with: `cargo run --release --example serve_views`

use gcc_math::Vec3;
use gcc_render::{RenderOptions, Roi, Schedule};
use gcc_scene::{ScenePreset, ViewSpec};
use gcc_serve::{RenderRequest, RenderService, SceneSource, ServeConfig, ServeError};

fn main() {
    let service = RenderService::new(
        ServeConfig {
            workers: 4,
            ..ServeConfig::default()
        },
        [
            (
                "lego".to_string(),
                SceneSource::Preset {
                    preset: ScenePreset::Lego,
                    scale: 0.1,
                },
            ),
            (
                "palace".to_string(),
                SceneSource::Preset {
                    preset: ScenePreset::Palace,
                    scale: 0.1,
                },
            ),
        ],
    );
    println!(
        "serving scenes {:?} on {} workers",
        service.scene_ids(),
        service.workers()
    );

    // A browser scrubbing the trajectory.
    let mut handles = Vec::new();
    for i in 0..4 {
        handles.push((
            format!("scrub t={:.2}", i as f32 / 4.0),
            service
                .submit(RenderRequest::trajectory("lego", i as f32 / 4.0))
                .unwrap(),
        ));
    }
    // A headset with an explicit pose, rendered by the GCC hardware
    // schedule at its panel resolution.
    handles.push((
        "headset pose".to_string(),
        service
            .submit(
                RenderRequest::new(
                    "palace",
                    ViewSpec::look_at(Vec3::new(4.0, 1.5, -6.0), Vec3::ZERO),
                )
                .with_options(
                    RenderOptions::default()
                        .with_schedule(Schedule::GccHardware)
                        .at_resolution(256, 144),
                ),
            )
            .unwrap(),
    ));
    // A magnifier asking for the center of the frame only.
    handles.push((
        "magnifier ROI".to_string(),
        service
            .submit(
                RenderRequest::trajectory("lego", 0.5)
                    .with_options(RenderOptions::default().with_roi(Roi::new(40, 30, 80, 60))),
            )
            .unwrap(),
    ));
    // A turntable client driving the orbit directly.
    handles.push((
        "turntable".to_string(),
        service
            .submit(RenderRequest::new(
                "palace",
                ViewSpec::Orbit {
                    angle: 1.8,
                    radius_scale: 1.2,
                    height_offset: 0.3,
                },
            ))
            .unwrap(),
    ));

    for (label, handle) in handles {
        let frame = handle.wait().expect("request served");
        println!(
            "{label:>14}: {}x{} px, {} Gaussians rendered",
            frame.image.width(),
            frame.image.height(),
            frame.stats.rendered
        );
    }

    // Bad requests fail fast with typed errors instead of reaching a
    // worker.
    match service.submit(RenderRequest::trajectory("lego", f32::NAN)) {
        Err(ServeError::InvalidRequest(e)) => println!("rejected as expected: {e}"),
        other => panic!("expected a typed rejection, got {other:?}"),
    }

    let stats = service.shutdown();
    println!(
        "\nserved {} frames in {} batches (hit rate {:.2}), p95 {:.2} ms",
        stats.frames,
        stats.batches,
        stats.hit_rate(),
        stats.latency_p95_ms
    );
    for (schedule, c) in &stats.per_schedule {
        println!(
            "  {:>13}: {} requests, {} frames, {} batches",
            schedule.name(),
            c.requests,
            c.frames,
            c.batches
        );
    }
}
