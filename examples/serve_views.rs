//! Heterogeneous serving through the session API: one `RenderService`,
//! many kinds of clients — a trajectory browser polling with
//! `wait_timeout`, a posed headset, a thumbnail generator asking for
//! small resolutions, a magnifier asking for a region of interest, and a
//! turntable driving the orbit directly. The service batches by
//! `(scene, schedule, resolution, priority)` and reports per-schedule
//! and per-priority breakdowns.
//!
//! Run with: `cargo run --release --example serve_views`

use std::time::Duration;

use gcc_math::Vec3;
use gcc_render::{RenderOptions, Roi, Schedule};
use gcc_scene::{ScenePreset, ViewSpec};
use gcc_serve::{RenderRequest, RenderService, SceneSource, ServeConfig, ServeError};

fn main() {
    let service = RenderService::new(
        ServeConfig {
            workers: 4,
            ..ServeConfig::default()
        },
        [
            (
                "lego".to_string(),
                SceneSource::Preset {
                    preset: ScenePreset::Lego,
                    scale: 0.1,
                },
            ),
            (
                "palace".to_string(),
                SceneSource::Preset {
                    preset: ScenePreset::Palace,
                    scale: 0.1,
                },
            ),
        ],
    );
    println!(
        "serving scenes {:?} on {} workers",
        service.scene_ids(),
        service.workers()
    );

    // A browser scrubbing the trajectory through one session (shared
    // defaults, warm scene), polling with a bounded wait instead of
    // blocking.
    let browser = service
        .session("lego", RenderOptions::default())
        .expect("lego session");
    let mut handles = Vec::new();
    for i in 0..4 {
        handles.push((
            format!("scrub t={:.2}", i as f32 / 4.0),
            browser
                .submit(ViewSpec::trajectory(i as f32 / 4.0))
                .unwrap(),
        ));
    }
    // A headset with an explicit pose, rendered by the GCC hardware
    // schedule at its panel resolution — its own session.
    let headset = service
        .session(
            "palace",
            RenderOptions::default()
                .with_schedule(Schedule::GccHardware)
                .at_resolution(256, 144),
        )
        .expect("palace session");
    handles.push((
        "headset pose".to_string(),
        headset
            .submit(ViewSpec::look_at(Vec3::new(4.0, 1.5, -6.0), Vec3::ZERO))
            .unwrap(),
    ));
    // A magnifier asking for the center of the frame only (the plain
    // submit surface still works and is equivalent).
    handles.push((
        "magnifier ROI".to_string(),
        service
            .submit(
                RenderRequest::trajectory("lego", 0.5)
                    .with_options(RenderOptions::default().with_roi(Roi::new(40, 30, 80, 60))),
            )
            .unwrap(),
    ));
    // A turntable client driving the orbit directly.
    handles.push((
        "turntable".to_string(),
        service
            .submit(RenderRequest::new(
                "palace",
                ViewSpec::Orbit {
                    angle: 1.8,
                    radius_scale: 1.2,
                    height_offset: 0.3,
                },
            ))
            .unwrap(),
    ));

    for (label, mut handle) in handles {
        // Poll with a bounded wait — the UI thread shape. The handle
        // comes back on timeout, so no frame is ever lost to a poll.
        let frame = loop {
            match handle.wait_timeout(Duration::from_millis(20)) {
                Ok(result) => break result.expect("request served"),
                Err(back) => handle = back,
            }
        };
        println!(
            "{label:>14}: {}x{} px, {} Gaussians rendered",
            frame.image.width(),
            frame.image.height(),
            frame.stats.rendered
        );
    }

    // Bad requests fail fast with typed errors instead of reaching a
    // worker.
    match browser.submit(ViewSpec::trajectory(f32::NAN)) {
        Err(ServeError::InvalidRequest(e)) => println!("rejected as expected: {e}"),
        other => panic!("expected a typed rejection, got {other:?}"),
    }

    let stats = service.shutdown();
    println!(
        "\nserved {} frames in {} batches (hit rate {:.2}), p95 {:.2} ms",
        stats.frames,
        stats.batches,
        stats.hit_rate(),
        stats.latency_p95_ms
    );
    for (schedule, c) in &stats.per_schedule {
        println!(
            "  {:>13}: {} requests, {} frames, {} batches",
            schedule.name(),
            c.requests,
            c.frames,
            c.batches
        );
    }
    for (priority, c) in &stats.per_priority {
        println!(
            "  {:>13}: {} frames, p95 {:.2} ms",
            priority.name(),
            c.frames,
            c.latency_p95_ms
        );
    }
}
