//! Architect's view: sweep the GCC hardware knobs (image buffer, PE array,
//! DRAM generation) on one scene and print the area-normalized Pareto
//! points — a condensed version of the paper's §5.4 sensitivity study.
//!
//! Run with: `cargo run --release --example design_space`

use gcc_scene::{SceneConfig, ScenePreset};
use gcc_sim::area::{alpha_blend_area_mm2, gcc_summary, image_buffer_area_mm2};
use gcc_sim::dram::DramModel;
use gcc_sim::gcc::{simulate_gcc, GccSimConfig};

fn main() {
    let scene = ScenePreset::Truck.build(&SceneConfig::with_scale(0.5));
    let cam = scene.default_camera();
    let base_area = gcc_summary().area_mm2;
    println!(
        "design-space sweep on '{}' ({} Gaussians)\n",
        scene.name,
        scene.len()
    );

    println!("image buffer (sub-view scales with capacity):");
    for kb in [32.0, 128.0, 512.0] {
        let mut cfg = GccSimConfig {
            image_buffer_kb: kb,
            subview_override: None,
            ..GccSimConfig::default()
        };
        cfg.subview_override = Some((cfg.subview_edge() / 2).max(16));
        let (r, _) = simulate_gcc(&scene.gaussians, &cam, &cfg, &scene.name);
        let area = base_area - image_buffer_area_mm2(128.0) + image_buffer_area_mm2(kb);
        println!(
            "  {kb:>6.0} KB -> {:>6.0} FPS, {:>6.1} FPS/mm2",
            r.fps(),
            r.fps() / area
        );
    }

    println!("\nalpha/blend PE array:");
    for edge in [4u32, 8, 16] {
        let cfg = GccSimConfig {
            block_edge: edge,
            ..GccSimConfig::default()
        };
        let (r, _) = simulate_gcc(&scene.gaussians, &cam, &cfg, &scene.name);
        let area = base_area - alpha_blend_area_mm2(64) + alpha_blend_area_mm2(edge * edge);
        println!(
            "  {edge:>2}x{edge:<2} -> {:>6.0} FPS, {:>6.1} FPS/mm2",
            r.fps(),
            r.fps() / area
        );
    }

    println!("\nDRAM generation:");
    for dram in DramModel::sweep() {
        let cfg = GccSimConfig {
            dram: dram.clone(),
            ..GccSimConfig::default()
        };
        let (r, _) = simulate_gcc(&scene.gaussians, &cam, &cfg, &scene.name);
        println!(
            "  {:>14} ({:>5.1} GB/s) -> {:>6.0} FPS",
            dram.name,
            dram.bandwidth_gbps,
            r.fps()
        );
    }
}
