//! Deadline-aware adaptive quality: the `gcc-lod` ladder stepping down
//! and climbing back in one orbit session.
//!
//! The service runs with `ServeConfig::lod` enabled, so every
//! deadline-carrying frame is dispatched through the quality ladder: the
//! rolling per-scene cost model predicts each rung's cost and the
//! scheduler picks the highest rung whose prediction fits the frame's
//! remaining budget. Under a deadline that full quality cannot meet the
//! orbit visibly steps down to the cheap rungs (reduced resolution +
//! filtered upscale, coarser hierarchy level, clamped SH) and meets
//! every deadline; once the deadline relaxes the ladder climbs straight
//! back to exact full-quality rendering.
//!
//! Run with: `cargo run --release --example deadline_orbit`

use std::time::{Duration, Instant};

use gcc_repro::lod::QualityLadder;
use gcc_repro::scene::ScenePreset;
use gcc_repro::serve::{
    LodDecision, LodPolicy, RenderRequest, RenderService, SceneSource, ServeConfig, StreamConfig,
    StreamSpec,
};

/// Streams one orbit with the given per-frame deadline and prints every
/// ladder decision: chosen rung, predicted vs actual cost, budget.
fn orbit(service: &RenderService, ladder: &QualityLadder, frames: usize, deadline: Duration) {
    let session = service
        .session("lego", Default::default())
        .expect("lego is registered");
    let stream = session
        .stream_with(
            StreamSpec::orbit(frames),
            StreamConfig::default()
                .with_window(1)
                .with_deadline(deadline),
        )
        .expect("orbit stream opens");
    let seen = service.stats().lod.recent.len();
    for item in stream {
        item.expect("orbit frame");
    }
    for (i, d) in service.stats().lod.recent.iter().skip(seen).enumerate() {
        let LodDecision {
            rung,
            predicted_us,
            actual_us,
            budget_us,
            missed,
        } = *d;
        let predicted = if predicted_us == 0 {
            "   cold".to_string()
        } else {
            format!("{:>5.1} ms", predicted_us as f64 / 1e3)
        };
        println!(
            "  frame {i}: rung {:<8} predicted {predicted}  actual {:>5.1} ms  \
             budget {:>6.1} ms{}",
            ladder.rungs()[rung as usize].name,
            actual_us as f64 / 1e3,
            budget_us as f64 / 1e3,
            if missed { "  MISSED" } else { "" },
        );
    }
}

fn main() {
    // A 2x dispatch margin: only climb to a rung whose predicted cost
    // fits the budget with comfortable headroom, so one mispredicted
    // frame doesn't turn into a miss while the cost model converges.
    let policy = LodPolicy {
        margin: 2.0,
        ..LodPolicy::default()
    };
    let ladder = policy.ladder.clone();
    let service = RenderService::new(
        ServeConfig {
            workers: 2,
            lod: Some(policy),
            ..ServeConfig::default()
        },
        [(
            "lego".to_string(),
            SceneSource::Preset {
                preset: ScenePreset::Lego,
                scale: 0.5,
            },
        )],
    );

    // One deadline-free frame: loads the scene, builds its Gaussian
    // hierarchy, and prices the exact rung for the cost model. Its wall
    // time calibrates the deadlines below to this machine.
    let t0 = Instant::now();
    service
        .render_blocking(RenderRequest::trajectory("lego", 0.0))
        .expect("warm frame");
    let full = t0.elapsed();
    println!(
        "full-quality frame: {:.1} ms — tight orbit deadline {:.1} ms, relaxed {:.1} ms",
        full.as_secs_f64() * 1e3,
        full.as_secs_f64() * 1e3 / 3.0,
        full.as_secs_f64() * 1e3 * 20.0,
    );

    // A deadline full quality cannot meet: the ladder steps down (the
    // first decision is always the miss-proof floor — the cost model is
    // cold) and every frame still arrives full-size, upscaled.
    println!("\ntight orbit (deadline full/3):");
    orbit(&service, &ladder, 8, full / 3);

    // Headroom returns: the ladder climbs back to exact rendering.
    println!("\nrelaxed orbit (deadline 20x full):");
    orbit(&service, &ladder, 4, full * 20);

    let stats = service.shutdown();
    println!(
        "\nladder: {} frames dispatched {:?} across rungs, {} degraded, \
         {} step-downs, {} recoveries, {} deadline misses",
        stats.lod.ladder_frames(),
        stats.lod.frames_by_rung,
        stats.lod.degraded_frames,
        stats.lod.degradations,
        stats.lod.recoveries,
        stats.deadline_misses(),
    );
}
