//! The session API over TCP: an in-process wire server on an ephemeral
//! loopback port, and a client streaming an orbit through it.
//!
//! The same serving semantics as `stream_orbit` — priority, per-frame
//! deadline, bounded in-flight window, typed rejections — but with a
//! real socket in the middle: every frame below crossed localhost as a
//! length-prefixed wire frame, and the deadline/priority accounting the
//! stats print at the end was kept by the server process-side.
//!
//! Run with: `cargo run --release --example wire_orbit`

use std::time::Duration;

use gcc_repro::render::{RenderOptions, Schedule};
use gcc_repro::scene::ScenePreset;
use gcc_repro::serve::{
    Priority, RenderService, SceneSource, ServeConfig, StreamConfig, StreamSpec,
};
use gcc_repro::wire::{WireClient, WireError, WireRejection, WireServer, WireServerConfig};

fn main() {
    // The server half: one RenderService behind a TCP listener. Port 0
    // lets the OS pick; a real deployment runs this in `gcc-served`.
    let service = RenderService::new(
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        [(
            "palace".to_string(),
            SceneSource::Preset {
                preset: ScenePreset::Palace,
                scale: 0.1,
            },
        )],
    );
    let server = WireServer::bind("127.0.0.1:0", service, WireServerConfig::default())
        .expect("loopback bind");
    println!("wire server on {}", server.local_addr());

    // The client half: stream one orbit, interactive priority, 150 ms
    // per-frame deadline, at most 3 undelivered frames in flight.
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    let mut stream = client
        .open(
            "palace",
            RenderOptions::default()
                .with_schedule(Schedule::GccHardware)
                .at_resolution(320, 180),
            StreamSpec::orbit(8),
            StreamConfig::default()
                .with_priority(Priority::Interactive)
                .with_window(3)
                .with_deadline(Duration::from_millis(150)),
        )
        .expect("orbit stream opens");
    println!("streaming {} orbit frames over the wire …", stream.len());
    while let Some(frame) = client.next_frame(&mut stream).expect("orbit frame") {
        println!(
            "  frame {:>2}/{}: {}x{}, {} gaussians rendered",
            stream.delivered(),
            stream.len(),
            frame.image.width(),
            frame.image.height(),
            frame.stats.rendered,
        );
    }
    assert_eq!(stream.delivered(), 8, "orbit delivered short");

    // Typed rejections survive the trip: an unknown scene is a
    // structured error, not a dead socket.
    match client.open(
        "atlantis",
        RenderOptions::default(),
        StreamSpec::orbit(1),
        StreamConfig::default(),
    ) {
        Err(WireError::Rejected(WireRejection::UnknownScene(scene))) => {
            println!("typed rejection crossed the wire: unknown scene {scene:?}");
        }
        other => panic!("expected a typed rejection, got {other:?}"),
    }

    // The per-priority accounting lives server-side; fetch it over the
    // wire.
    let stats = client.stats().expect("stats");
    for priority in Priority::ALL {
        let p = stats.priority(priority);
        println!(
            "{:>12}: {} requests, {} frames, {} deadline misses, p95 {:.2} ms",
            priority.name(),
            p.requests,
            p.frames,
            p.deadline_misses,
            p.latency_p95_ms,
        );
    }
    assert_eq!(stats.frames, 8, "server counted the orbit");

    // The wire Shutdown request is the SIGTERM of the protocol: the
    // hosting process observes it and drains.
    client.shutdown_server().expect("shutdown ack");
    assert!(server.shutdown_requested());
    let final_stats = server.shutdown();
    println!(
        "server drained: {} frames in {} batches, {} streams completed",
        final_stats.frames, final_stats.batches, final_stats.streams.completed,
    );
}
