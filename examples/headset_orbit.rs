//! Headset scenario, served: orbit a scene *through the session API* and
//! check whether the modeled GCC accelerator sustains the 90 FPS
//! immersion target the paper's intro demands — frame by frame, against
//! the GSCore baseline.
//!
//! The orbit is expressed as a `StreamSpec::OrbitLoop` consumed from a
//! `FrameStream`: the service keeps the scene resident and the worker's
//! scratch warm across the whole orbit (frames of one stream share a
//! batch key), frames arrive in order under a bounded in-flight window,
//! and each one carries the unified `FrameStats` the simulators consume.
//! The GCC schedule runs with the paper's hardware configuration via a
//! custom renderer table entry.
//!
//! Run with: `cargo run --release --example headset_orbit`

use gcc_render::{GaussianWiseRenderer, RenderOptions, Schedule};
use gcc_scene::{SceneConfig, ScenePreset, ViewSpec};
use gcc_serve::{
    RenderService, SceneSource, ScheduleRenderers, ServeConfig, StreamConfig, StreamSpec,
};
use gcc_sim::gcc::GccSimConfig;
use gcc_sim::gscore::GscoreConfig;

fn main() {
    let scene = ScenePreset::Palace.build(&SceneConfig::with_scale(0.5));
    let name = scene.name.clone();
    println!(
        "orbiting '{}' ({} Gaussians) through the serving layer …\n",
        name,
        scene.len()
    );

    // The headset asks for its own panel size; every frame of both
    // streams carries the override through the session defaults.
    let options = RenderOptions::default().at_resolution(960, 540);
    let cam = scene
        .resolve_view(&ViewSpec::trajectory(0.0), &options)
        .expect("valid view");
    let pixels = f64::from(cam.width) * f64::from(cam.height);
    let gs_cfg = GscoreConfig::default();
    let gc_cfg = GccSimConfig::default();

    // One service, with the GCC hardware-config renderer swapped in for
    // the Gaussian-wise schedule (the simulator's calibrated datapath).
    let service = RenderService::with_renderers(
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        [(
            "palace".to_string(),
            SceneSource::Memory(std::sync::Arc::new(scene)),
        )],
        ScheduleRenderers::default().with(
            Schedule::GaussianWise,
            Box::new(GaussianWiseRenderer::new(gc_cfg.renderer_config(&cam))),
        ),
    );

    // Stream the same 8-frame orbit once per schedule. Streams deliver
    // in order, so frame i of both runs is the same viewpoint.
    let orbit = StreamSpec::orbit(8);
    let stream_for = |schedule: Schedule| {
        let session = service
            .session("palace", options.clone().with_schedule(schedule))
            .expect("palace session");
        session
            .stream_with(orbit.clone(), StreamConfig::bulk().with_window(4))
            .expect("orbit stream")
    };
    let gs_frames: Vec<_> = stream_for(Schedule::Gscore)
        .map(|f| f.expect("gscore frame"))
        .collect();
    let gc_frames: Vec<_> = stream_for(Schedule::GaussianWise)
        .map(|f| f.expect("gcc frame"))
        .collect();

    println!(
        "{:>5}  {:>12}  {:>12}  {:>8}  {:>10}",
        "view", "GSCore FPS", "GCC FPS", "speedup", "GCC mJ/frm"
    );
    let mut worst_gcc = f64::INFINITY;
    for (i, (gs_frame, gc_frame)) in gs_frames.iter().zip(&gc_frames).enumerate() {
        let gs = gcc_sim::gscore::report_from_stats(&gs_frame.stats, &gs_cfg, &name);
        let gc = gcc_sim::gcc::report_from_stats(&gc_frame.stats, pixels, &gc_cfg, &name);
        worst_gcc = worst_gcc.min(gc.fps());
        println!(
            "{:>5}  {:>12.0}  {:>12.0}  {:>7.2}x  {:>10.3}",
            i,
            gs.fps(),
            gc.fps(),
            gc.fps() / gs.fps(),
            gc.energy_per_frame_mj()
        );
    }
    let stats = service.shutdown();
    println!(
        "\nworst-case GCC frame rate: {:.0} FPS ({} the 90 FPS immersion target)",
        worst_gcc,
        if worst_gcc >= 90.0 { "meets" } else { "misses" }
    );
    println!(
        "served {} streamed frames in {} batches, scene loaded {} time(s), bulk p95 {:.1} ms",
        stats.frames,
        stats.batches,
        stats.loads(),
        stats.priority(gcc_serve::Priority::Bulk).latency_p95_ms
    );
}
