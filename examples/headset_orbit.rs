//! Headset scenario: orbit a scene and check whether the modeled GCC
//! accelerator sustains the 90 FPS immersion target the paper's intro
//! demands — frame by frame, against the GSCore baseline.
//!
//! Run with: `cargo run --release --example headset_orbit`

use gcc_scene::{SceneConfig, ScenePreset};
use gcc_sim::gcc::{simulate_gcc, GccSimConfig};
use gcc_sim::gscore::{simulate_gscore, GscoreConfig};

fn main() {
    let scene = ScenePreset::Palace.build(&SceneConfig::with_scale(0.5));
    println!(
        "orbiting '{}' ({} Gaussians), 8 viewpoints\n",
        scene.name,
        scene.len()
    );
    println!(
        "{:>5}  {:>12}  {:>12}  {:>8}  {:>10}",
        "view", "GSCore FPS", "GCC FPS", "speedup", "GCC mJ/frm"
    );

    let mut worst_gcc = f64::INFINITY;
    for i in 0..8 {
        let t = i as f32 / 8.0;
        let cam = scene.camera(t);
        let (gs, _) =
            simulate_gscore(&scene.gaussians, &cam, &GscoreConfig::default(), &scene.name);
        let (gc, _) = simulate_gcc(&scene.gaussians, &cam, &GccSimConfig::default(), &scene.name);
        worst_gcc = worst_gcc.min(gc.fps());
        println!(
            "{:>5}  {:>12.0}  {:>12.0}  {:>7.2}x  {:>10.3}",
            i,
            gs.fps(),
            gc.fps(),
            gc.fps() / gs.fps(),
            gc.energy_per_frame_mj()
        );
    }
    println!(
        "\nworst-case GCC frame rate: {:.0} FPS ({} the 90 FPS immersion target)",
        worst_gcc,
        if worst_gcc >= 90.0 { "meets" } else { "misses" }
    );
}
