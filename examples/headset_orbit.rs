//! Headset scenario: orbit a scene and check whether the modeled GCC
//! accelerator sustains the 90 FPS immersion target the paper's intro
//! demands — frame by frame, against the GSCore baseline.
//!
//! The orbit is expressed through the request-model API: the
//! `TrajectoryRunner` emits `ViewSpec`s, and `run_with_options` renders
//! them as `RenderJob`s (here with a resolution override, as a headset
//! would request its panel size). Each accelerator report is then derived
//! from the frames' unified `FrameStats`, which is exactly the seam the
//! simulators consume.
//!
//! Run with: `cargo run --release --example headset_orbit`

use gcc_parallel::Parallelism;
use gcc_render::{GaussianWiseRenderer, RenderOptions, StandardRenderer};
use gcc_scene::{SceneConfig, ScenePreset, TrajectoryRunner, ViewSpec};
use gcc_sim::gcc::GccSimConfig;
use gcc_sim::gscore::GscoreConfig;

fn main() {
    let scene = ScenePreset::Palace.build(&SceneConfig::with_scale(0.5));
    let runner = TrajectoryRunner::new(8).with_parallelism(Parallelism::Auto);
    let views = runner.views();
    println!(
        "orbiting '{}' ({} Gaussians), {} viewpoints: {:?} …\n",
        scene.name,
        scene.len(),
        views.len(),
        &views[..2.min(views.len())]
    );

    // The headset asks for its own panel size; every frame of the batch
    // carries the override. A per-eye client could add an ROI per frame.
    let options = RenderOptions::default().at_resolution(960, 540);
    let cam = scene
        .resolve_view(&ViewSpec::trajectory(0.0), &options)
        .expect("valid view");
    let pixels = f64::from(cam.width) * f64::from(cam.height);
    let gs_cfg = GscoreConfig::default();
    let gc_cfg = GccSimConfig::default();

    // Render the whole orbit as a batch through each schedule; frames run
    // across threads, one functional render per viewpoint.
    let gs_run = runner.run_with_options(&scene, &StandardRenderer::gscore(), &options);
    let gc_run = runner.run_with_options(
        &scene,
        &GaussianWiseRenderer::new(gc_cfg.renderer_config(&cam)),
        &options,
    );

    println!(
        "{:>5}  {:>12}  {:>12}  {:>8}  {:>10}",
        "view", "GSCore FPS", "GCC FPS", "speedup", "GCC mJ/frm"
    );
    let mut worst_gcc = f64::INFINITY;
    for (i, (gs_frame, gc_frame)) in gs_run.frames.iter().zip(&gc_run.frames).enumerate() {
        let gs = gcc_sim::gscore::report_from_stats(&gs_frame.stats, &gs_cfg, &scene.name);
        let gc = gcc_sim::gcc::report_from_stats(&gc_frame.stats, pixels, &gc_cfg, &scene.name);
        worst_gcc = worst_gcc.min(gc.fps());
        println!(
            "{:>5}  {:>12.0}  {:>12.0}  {:>7.2}x  {:>10.3}",
            i,
            gs.fps(),
            gc.fps(),
            gc.fps() / gs.fps(),
            gc.energy_per_frame_mj()
        );
    }
    println!(
        "\nworst-case GCC frame rate: {:.0} FPS ({} the 90 FPS immersion target)",
        worst_gcc,
        if worst_gcc >= 90.0 { "meets" } else { "misses" }
    );
}
