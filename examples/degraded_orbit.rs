//! Serving through a fault storm: the degraded-operation story of
//! DESIGN.md §11 in one sitting.
//!
//! A seeded `FaultPlan` injects transient load failures (absorbed by the
//! retry policy), one fatal load (tripping the scene-quarantine circuit
//! breaker) and a ~15% render-panic rate (each panic caught by worker
//! supervision and respawned) into a live service while an orbit client
//! keeps streaming. Failures surface as *typed errors on the affected
//! request* — never a stranded client, never a shrunken pool — and once
//! the plan is disarmed the same service serves clean again: quarantined
//! scenes readmit through a half-open probe and a full orbit delivers
//! every frame.
//!
//! Run with: `cargo run --release --example degraded_orbit`
//! (the respawn log lines on stderr are the supervisor doing its job)

use std::sync::Arc;
use std::time::Duration;

use gcc_repro::render::{RenderOptions, Schedule};
use gcc_repro::scene::io::RetryPolicy;
use gcc_repro::scene::ScenePreset;
use gcc_repro::serve::{
    ChaosRenderer, FaultPlan, LoadFault, RenderRequest, RenderService, SceneSource,
    ScheduleRenderers, ServeConfig, ServeError, StreamConfig, StreamSpec,
};

fn main() {
    // The storm: palace's first two load attempts fail transiently,
    // lego's first load fails fatally, and ~15% of render calls panic.
    let plan = Arc::new(
        FaultPlan::new(0x0DE6_0B17)
            .with_render_panics(150)
            .script_loads(
                "palace",
                [
                    Some(LoadFault::FailRetryable),
                    Some(LoadFault::FailRetryable),
                ],
            )
            .script_loads("lego", [Some(LoadFault::FailFatal)]),
    );
    let registry =
        [("palace", ScenePreset::Palace), ("lego", ScenePreset::Lego)].map(|(id, preset)| {
            (
                id.to_string(),
                SceneSource::faulty(
                    id,
                    SceneSource::Preset {
                        preset,
                        scale: 0.05,
                    },
                    Arc::clone(&plan),
                ),
            )
        });
    let mut renderers = ScheduleRenderers::default();
    for schedule in Schedule::ALL {
        renderers = renderers.with(
            schedule,
            Box::new(ChaosRenderer::new(schedule.renderer(), Arc::clone(&plan))),
        );
    }
    let quarantine = Duration::from_millis(50);
    let service = RenderService::with_renderers(
        ServeConfig {
            workers: 2,
            quarantine_for: quarantine,
            load_retry: RetryPolicy {
                max_attempts: 3,
                base_backoff: Duration::from_millis(2),
                max_backoff: Duration::from_millis(10),
            },
            ..ServeConfig::default()
        },
        registry,
        renderers,
    );

    // Orbit through the storm. Palace's transient load failures are
    // retried away invisibly; a render panic fails its stream with one
    // typed terminal error (the worker respawns and the next stream is
    // served by a full-width pool).
    println!("orbiting palace through the storm (~15% render panics) …");
    let session = service
        .session("palace", RenderOptions::default().at_resolution(320, 180))
        .expect("palace is registered");
    let mut delivered = 0u32;
    let mut absorbed_panics = 0u32;
    for round in 0..3 {
        let stream = session
            .stream_with(StreamSpec::orbit(6), StreamConfig::bulk().with_window(2))
            .expect("bulk admits under a load storm");
        for item in stream {
            match item {
                Ok(_) => delivered += 1,
                Err(ServeError::WorkerPanicked) => {
                    absorbed_panics += 1;
                    println!(
                        "  round {round}: a worker panicked mid-batch — the stream \
                         resolved with one typed error, the worker respawned"
                    );
                }
                Err(e) => println!("  round {round}: stream failed: {e}"),
            }
        }
    }
    println!("  {delivered} frames delivered, {absorbed_panics} streams absorbed a panic");

    // Lego's fatal load trips the circuit breaker: the waiting request
    // gets a typed load error, and follow-ups fail fast while the scene
    // is quarantined — no loader worker stalls on a known-bad source.
    match service.submit(RenderRequest::trajectory("lego", 0.2)) {
        Ok(handle) => match handle.wait() {
            Err(e) => println!("first lego request: {e}"),
            Ok(_) => println!("first lego request unexpectedly rendered"),
        },
        Err(e) => println!("first lego request rejected at submit: {e}"),
    }
    match service.submit(RenderRequest::trajectory("lego", 0.4)) {
        Err(e @ ServeError::Quarantined { .. }) => {
            println!("second lego request fails fast: {e}");
        }
        other => println!("second lego request: {:?}", other.map(|_| "admitted")),
    }

    // Recovery: disarm the plan, let the quarantine window lapse, and the
    // same service serves clean — the half-open probe readmits lego and a
    // full orbit delivers every frame.
    plan.disarm();
    std::thread::sleep(quarantine + Duration::from_millis(10));
    let frame = service
        .submit(RenderRequest::trajectory("lego", 0.5))
        .expect("the half-open probe admits after the quarantine window")
        .wait()
        .expect("the probe load succeeds once the storm is over");
    println!(
        "after {quarantine:?}, the half-open probe readmitted lego: {}x{} px",
        frame.image.width(),
        frame.image.height()
    );
    let epilogue = session
        .stream_with(
            StreamSpec::orbit(6),
            StreamConfig::bulk()
                .with_window(2)
                .with_deadline(Duration::from_millis(150)),
        )
        .expect("epilogue stream opens");
    let clean = epilogue.filter(Result::is_ok).count();
    assert_eq!(clean, 6, "the disarmed service must deliver every frame");
    println!("disarmed epilogue: all {clean} orbit frames delivered clean");

    let stats = service.shutdown();
    println!(
        "\nsupervision: {} respawns, {} lost workers (pool back at full width)",
        stats.respawns, stats.lost_workers
    );
    println!(
        "loads: {} retries absorbed, {} quarantine trips, {} scenes still quarantined",
        stats.retries(),
        stats.quarantines(),
        stats.quarantined_scenes
    );
    assert_eq!(stats.lost_workers, 0, "every panic must be absorbed");
    assert!(stats.retries() >= 2, "palace's transient failures retried");
    assert!(
        stats.quarantines() >= 1,
        "lego's fatal load tripped the breaker"
    );
    assert_eq!(stats.quarantined_scenes, 0, "the probe readmitted lego");
}
