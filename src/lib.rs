//! Umbrella crate for the GCC (MICRO 2025) reproduction: re-exports the
//! workspace's library crates so examples and integration tests can
//! depend on one name.
//!
//! See `README.md` for the tour, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! ```
//! use gcc_repro::render::{Renderer, StandardRenderer};
//! use gcc_repro::scene::{SceneConfig, ScenePreset};
//!
//! let scene = ScenePreset::Lego.build(&SceneConfig::with_scale(0.02));
//! assert!(!scene.is_empty());
//! let cam = scene.default_camera();
//! let frame = StandardRenderer::reference().render_frame(&scene.gaussians, &cam);
//! assert_eq!(frame.stats.total_gaussians, scene.len() as u64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gcc_core as core;
pub use gcc_lod as lod;
pub use gcc_math as math;
pub use gcc_parallel as parallel;
pub use gcc_render as render;
pub use gcc_scene as scene;
pub use gcc_serve as serve;
pub use gcc_sim as sim;
pub use gcc_wire as wire;
